package otlp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/telemetry"
)

// collector is an in-process fake OTLP collector: it accumulates decoded
// trace and metric payloads and can be told to fail its first N requests
// with 503 + Retry-After.
type collector struct {
	mu        sync.Mutex
	traces    []tracesPayload
	metrics   []metricsPayload
	failFirst atomic.Int64
	requests  atomic.Int64
	srv       *httptest.Server
}

func newCollector(t *testing.T) *collector {
	t.Helper()
	c := &collector{}
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		if c.failFirst.Load() > 0 {
			c.failFirst.Add(-1)
			w.Header().Set("Retry-After", "0.01")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		switch r.URL.Path {
		case "/v1/traces":
			var p tracesPayload
			if err := json.Unmarshal(body, &p); err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			c.traces = append(c.traces, p)
		case "/v1/metrics":
			var p metricsPayload
			if err := json.Unmarshal(body, &p); err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			c.metrics = append(c.metrics, p)
		default:
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(c.srv.Close)
	return c
}

func (c *collector) spanNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, p := range c.traces {
		for _, rs := range p.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				for _, s := range ss.Spans {
					out = append(out, s.Name)
				}
			}
		}
	}
	return out
}

func (c *collector) metricNames() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]bool{}
	for _, p := range c.metrics {
		for _, rm := range p.ResourceMetrics {
			for _, sm := range rm.ScopeMetrics {
				for _, m := range sm.Metrics {
					out[m.Name] = true
				}
			}
		}
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sampleTrace(name string) *telemetry.TraceData {
	start := time.Unix(1700000000, 0)
	return &telemetry.TraceData{
		TraceID:    "4bf92f3577b34da6a3ce929d0e0e4736",
		Name:       name,
		Start:      start,
		DurationNS: int64(5 * time.Millisecond),
		Reason:     telemetry.ReasonSlow,
		Spans: []telemetry.SpanData{
			{
				TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: "00f067aa0ba902b7",
				Name: name, Start: start, DurationNS: int64(5 * time.Millisecond),
				Attrs: []telemetry.Attr{{Key: "route", Value: "cast"}, {Key: "bytes", Value: 123}},
			},
			{
				TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: "b7ad6b7169203331",
				ParentID: "00f067aa0ba902b7", Name: "cast", Start: start,
				DurationNS: int64(3 * time.Millisecond), Error: "boom",
				Links: []string{"abad1deaabad1deaabad1deaabad1dea:0102030405060708"},
			},
		},
	}
}

func TestExportTraceAndMetrics(t *testing.T) {
	col := newCollector(t)
	base := leakcheck.Snapshot()
	reg := telemetry.NewRegistry()
	reg.Counter("casts_total", "casts").Add(3)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1})
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", time.Unix(1700000000, 0))

	e := New(Options{
		Endpoint:  col.srv.URL,
		Interval:  20 * time.Millisecond,
		BatchSize: 1,
		Gather:    reg.Gather,
		Resource:  map[string]string{"service.name": "castd", "service.instance.id": "node-a"},
	})
	e.ExportTrace(sampleTrace("GET /cast"))

	waitFor(t, "span arrival", func() bool { return len(col.spanNames()) > 0 })
	waitFor(t, "metric arrival", func() bool { return col.metricNames()["casts_total"] })
	e.Close()
	leakcheck.Check(t, base)

	names := col.spanNames()
	if names[0] != "GET /cast" || len(names) < 2 {
		t.Fatalf("unexpected spans: %v", names)
	}
	// Shape assertions on the first trace payload.
	col.mu.Lock()
	p := col.traces[0]
	col.mu.Unlock()
	rs := p.ResourceSpans[0]
	var svc string
	for _, kv := range rs.Resource.Attributes {
		if kv.Key == "service.name" && kv.Value.StringValue != nil {
			svc = *kv.Value.StringValue
		}
	}
	if svc != "castd" {
		t.Fatalf("resource service.name missing: %+v", rs.Resource)
	}
	spans := rs.ScopeSpans[0].Spans
	if spans[0].Kind != 2 || spans[1].Kind != 1 {
		t.Fatalf("root should be SERVER, child INTERNAL: %+v", spans)
	}
	if spans[1].Status.Code != 2 || spans[1].Status.Message != "boom" {
		t.Fatalf("error span should carry STATUS_CODE_ERROR: %+v", spans[1].Status)
	}
	if spans[1].ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("child parent id lost: %+v", spans[1])
	}
	if len(spans[1].Links) != 1 || spans[1].Links[0].TraceID != "abad1deaabad1deaabad1deaabad1dea" {
		t.Fatalf("link lost: %+v", spans[1].Links)
	}

	// Histogram exemplar must ride the metric export.
	col.mu.Lock()
	mp := col.metrics[0]
	col.mu.Unlock()
	var found bool
	for _, m := range mp.ResourceMetrics[0].ScopeMetrics[0].Metrics {
		if m.Name != "lat_seconds" || m.Histogram == nil {
			continue
		}
		dp := m.Histogram.DataPoints[0]
		if dp.Count != "1" || len(dp.BucketCounts) != 2 || len(dp.ExplicitBounds) != 1 {
			t.Fatalf("histogram shape wrong: %+v", dp)
		}
		if len(dp.Exemplars) != 1 || dp.Exemplars[0].TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Fatalf("exemplar missing from OTLP histogram: %+v", dp.Exemplars)
		}
		found = true
	}
	if !found {
		t.Fatal("lat_seconds histogram not exported")
	}

	st := e.Stats()
	if st.ExportedSpans == 0 || st.ExportedMetrics == 0 {
		t.Fatalf("self-accounting missed exports: %+v", st)
	}
}

// TestRetryBackoffAndRecovery drives the 503 storm: the collector fails
// the first two sends with Retry-After, and the exporter must retry and
// deliver without dropping.
func TestRetryBackoffAndRecovery(t *testing.T) {
	col := newCollector(t)
	col.failFirst.Store(2)
	e := New(Options{
		Endpoint:    col.srv.URL,
		Interval:    time.Hour, // only explicit flushes
		BatchSize:   1,
		backoffBase: time.Millisecond,
	})
	defer e.Close()
	e.ExportTrace(sampleTrace("retry me"))

	waitFor(t, "recovery after 503 storm", func() bool { return len(col.spanNames()) == 2 })
	st := e.Stats()
	if st.Retries < 2 {
		t.Fatalf("want >=2 retries, got %+v", st)
	}
	if st.DroppedRetry != 0 || st.DroppedRejected != 0 {
		t.Fatalf("storm should not drop: %+v", st)
	}
	if got := col.requests.Load(); got != 3 {
		t.Fatalf("want exactly 3 attempts (2 failed + 1 ok), got %d", got)
	}
}

// TestFaultinjectStorm exercises the same storm through the chaos seam —
// no collector failures, the faults are synthesized client-side.
func TestFaultinjectStorm(t *testing.T) {
	col := newCollector(t)
	faultinject.Enable(faultinject.Config{OTLPFail: 2})
	defer faultinject.Disable()
	e := New(Options{
		Endpoint:    col.srv.URL,
		Interval:    time.Hour,
		BatchSize:   1,
		backoffBase: time.Millisecond,
	})
	defer e.Close()
	e.ExportTrace(sampleTrace("chaos"))

	waitFor(t, "recovery after injected storm", func() bool { return len(col.spanNames()) == 2 })
	if st := e.Stats(); st.Retries < 2 {
		t.Fatalf("injected failures should count as retries: %+v", st)
	}
	// Only the successful attempt reached the network.
	if got := col.requests.Load(); got != 1 {
		t.Fatalf("injected faults must not hit the wire, got %d requests", got)
	}
}

func TestRetryExhaustionDrops(t *testing.T) {
	col := newCollector(t)
	col.failFirst.Store(100)
	e := New(Options{
		Endpoint:    col.srv.URL,
		Interval:    time.Hour,
		BatchSize:   1,
		MaxRetries:  2,
		backoffBase: time.Millisecond,
	})
	defer e.Close()
	e.ExportTrace(sampleTrace("doomed"))
	waitFor(t, "retry exhaustion", func() bool { return e.Stats().DroppedRetry == 1 })
	if st := e.Stats(); st.Retries != 2 || st.ExportedSpans != 0 {
		t.Fatalf("want 2 retries then drop: %+v", st)
	}
}

func TestRejectedNotRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()
	e := New(Options{Endpoint: srv.URL, Interval: time.Hour, BatchSize: 1, backoffBase: time.Millisecond})
	defer e.Close()
	e.ExportTrace(sampleTrace("bad"))
	waitFor(t, "rejection", func() bool { return e.Stats().DroppedRejected == 1 })
	if st := e.Stats(); st.Retries != 0 {
		t.Fatalf("4xx must not be retried: %+v", st)
	}
}

func TestQueueDropsOldest(t *testing.T) {
	// No server needed: nothing flushes (huge batch size, long interval).
	e := New(Options{
		Endpoint:    "http://127.0.0.1:0",
		Interval:    time.Hour,
		QueueSize:   2,
		BatchSize:   1000,
		MaxRetries:  1,
		backoffBase: time.Millisecond,
	})
	e.ExportTrace(sampleTrace("one"))
	e.ExportTrace(sampleTrace("two"))
	e.ExportTrace(sampleTrace("three"))
	st := e.Stats()
	if st.DroppedFull != 1 || st.QueueDepth != 2 {
		t.Fatalf("want drop-oldest at capacity 2: %+v", st)
	}
	e.mu.Lock()
	first := e.queue[0].trace.Name
	e.mu.Unlock()
	if first != "two" {
		t.Fatalf("oldest item should have been dropped, head is %q", first)
	}
	// Close flush will fail against the dead endpoint; just verify the
	// goroutine exits promptly anyway.
	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a dead collector")
	}
}

// TestCloseFlushesPending is the drain-order satellite at unit level: items
// enqueued but not yet flushed must reach the collector during Close, along
// with a final metric snapshot, and the goroutine must be gone after.
func TestCloseFlushesPending(t *testing.T) {
	col := newCollector(t)
	base := leakcheck.Snapshot()
	reg := telemetry.NewRegistry()
	reg.Counter("final_total", "final").Add(9)
	e := New(Options{
		Endpoint:  col.srv.URL,
		Interval:  time.Hour, // ticker never fires: only Close can flush
		BatchSize: 1000,      // size never triggers either
		Gather:    reg.Gather,
	})
	e.ExportTrace(sampleTrace("pending"))
	if len(col.spanNames()) != 0 {
		t.Fatal("nothing should flush before Close")
	}
	e.Close()
	if names := col.spanNames(); len(names) != 2 {
		t.Fatalf("Close must flush the pending trace, got %v", names)
	}
	if !col.metricNames()["final_total"] {
		t.Fatal("Close must ship a final metric snapshot")
	}
	leakcheck.Check(t, base)
	// Idempotent, nil-safe.
	e.Close()
	var nilExp *Exporter
	nilExp.Close()
	nilExp.ExportTrace(sampleTrace("x"))
	if nilExp.Stats() != (Stats{}) {
		t.Fatal("nil exporter stats should be zero")
	}
}

func TestRegisterFamiliesExistAtZero(t *testing.T) {
	reg := telemetry.NewRegistry()
	var nilExp *Exporter
	nilExp.Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`castd_otlp_exported_total{signal="spans"} 0`,
		`castd_otlp_dropped_total{reason="queue_full"} 0`,
		"castd_otlp_retries_total 0",
		"castd_otlp_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{"0.25", 250 * time.Millisecond},
		{"-3", 0},
		{"99999", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
