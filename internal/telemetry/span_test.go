package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic sampler tests.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// testTracer builds a tracer with a deterministic clock and head sampler.
func testTracer(rate float64, slow time.Duration, capacity int, clk *fakeClock, roll float64) *Tracer {
	return NewTracer(TracerOptions{
		SampleRate:    rate,
		SlowThreshold: slow,
		Capacity:      capacity,
		clock:         clk.Now,
		randFloat:     func() float64 { return roll },
	})
}

func TestTraceparentRoundTrip(t *testing.T) {
	const header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) not ok", header)
	}
	if got := sc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", got)
	}
	if got := sc.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", got)
	}
	if !sc.Sampled {
		t.Error("sampled flag not decoded")
	}
	if got := FormatTraceparent(sc); got != header {
		t.Errorf("round trip = %q, want %q", got, header)
	}

	// Propagation: a request started with this parent joins its trace and
	// the injected header carries the same trace id with a fresh span id.
	clk := newFakeClock()
	tr := testTracer(1, time.Second, 8, clk, 0)
	span := tr.StartRequest("http cast", sc)
	out := span.Context()
	if out.TraceID != sc.TraceID {
		t.Errorf("child trace id = %s, want inherited %s", out.TraceID, sc.TraceID)
	}
	if out.SpanID == sc.SpanID || out.SpanID.IsZero() {
		t.Errorf("child span id = %s, want fresh non-zero", out.SpanID)
	}
	reinjected := FormatTraceparent(out)
	if !strings.HasPrefix(reinjected, "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Errorf("injected header %q lost the trace id", reinjected)
	}
	span.End()
	td, ok := tr.Trace("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok {
		t.Fatal("joined trace not retained")
	}
	// The remote parent id is preserved on the root span.
	if td.Spans[0].ParentID != "00f067aa0ba902b7" {
		t.Errorf("root parent = %q, want remote parent", td.Spans[0].ParentID)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-header",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // 3 fields
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // version 00 with 5 fields
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // non-hex version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero parent id
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",    // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01",    // short parent id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",    // short flags
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",   // non-hex trace id
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	// A malformed header must fall back to a fresh trace id, not zero.
	clk := newFakeClock()
	tr := testTracer(1, time.Second, 8, clk, 0)
	sc, _ := ParseTraceparent("garbage")
	span := tr.StartRequest("http cast", sc)
	if span.Context().TraceID.IsZero() {
		t.Error("fresh trace id not drawn after malformed header")
	}
	if td := span.Context().TraceID.String(); strings.Contains("garbage", td) {
		t.Error("trace id should be random")
	}
	span.End()
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Per spec, a future version with extra fields still parses as 00.
	sc, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	if !ok || sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("future version rejected: ok=%v sc=%+v", ok, sc)
	}
}

func TestTailSamplerDeterminism(t *testing.T) {
	const slow = 100 * time.Millisecond
	cases := []struct {
		name   string
		roll   float64 // head-sampler draw (< rate keeps)
		dur    time.Duration
		fail   bool
		reason string // "" = dropped
	}{
		{"fast-unlucky-dropped", 0.99, time.Millisecond, false, ""},
		{"fast-lucky-sampled", 0.001, time.Millisecond, false, ReasonSampled},
		{"slow-always-kept", 0.99, slow, false, ReasonSlow},
		{"error-always-kept", 0.99, time.Millisecond, true, ReasonError},
		{"error-beats-slow", 0.99, slow * 2, true, ReasonError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			tr := testTracer(0.01, slow, 8, clk, tc.roll)
			span := tr.StartRequest("req", SpanContext{})
			clk.Advance(tc.dur)
			if tc.fail {
				span.SetError("boom")
			}
			span.End()
			st := tr.Stats()
			if tc.reason == "" {
				if st.Retained != 0 || st.Dropped != 1 {
					t.Fatalf("stats = %+v, want dropped", st)
				}
				return
			}
			if st.Retained != 1 || st.Dropped != 0 {
				t.Fatalf("stats = %+v, want retained", st)
			}
			traces := tr.Traces()
			if len(traces) != 1 {
				t.Fatalf("%d traces retained", len(traces))
			}
			if traces[0].Reason != tc.reason {
				t.Errorf("reason = %q, want %q", traces[0].Reason, tc.reason)
			}
			if traces[0].DurationNS != tc.dur.Nanoseconds() {
				t.Errorf("duration = %d, want %d", traces[0].DurationNS, tc.dur.Nanoseconds())
			}
		})
	}
}

func TestRingNewestFirstAndEviction(t *testing.T) {
	clk := newFakeClock()
	tr := testTracer(1, time.Hour, 3, clk, 0)
	for i := 0; i < 5; i++ {
		span := tr.StartRequest(fmt.Sprintf("req-%d", i), SpanContext{})
		clk.Advance(time.Millisecond)
		span.End()
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("%d retained, want ring capacity 3", len(traces))
	}
	// Newest first: req-4, req-3, req-2; req-0 and req-1 were evicted.
	for i, want := range []string{"req-4", "req-3", "req-2"} {
		if traces[i].Name != want {
			t.Errorf("traces[%d] = %s, want %s", i, traces[i].Name, want)
		}
	}
	if st := tr.Stats(); st.Started != 5 || st.Retained != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSpanTreeAndEvents(t *testing.T) {
	clk := newFakeClock()
	tr := testTracer(1, time.Hour, 4, clk, 0)
	root := tr.StartRequest("http cast", SpanContext{})
	clk.Advance(time.Millisecond)
	child := root.StartChild("registry.lookup")
	child.SetAttr("outcome", "hit")
	other := SpanContext{TraceID: TraceID{1}, SpanID: SpanID{2}}
	child.AddLink(other)
	child.AddLink(SpanContext{}) // invalid link ignored
	clk.Advance(2 * time.Millisecond)
	child.End()
	leaf := root.StartChild("cast.validate")
	leaf.AddEvent("skip", Attr{Key: "path", Value: "/order/items"})
	clk.Advance(time.Millisecond)
	// leaf deliberately left open: finish must clamp it to the root end.
	root.End()

	td, ok := tr.Trace(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("%d spans, want 3", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	rootID := byName["http cast"].SpanID
	if byName["registry.lookup"].ParentID != rootID {
		t.Error("child not parented to root")
	}
	if byName["registry.lookup"].DurationNS != (2 * time.Millisecond).Nanoseconds() {
		t.Errorf("child duration = %d", byName["registry.lookup"].DurationNS)
	}
	wantLink := other.TraceID.String() + ":" + other.SpanID.String()
	if links := byName["registry.lookup"].Links; len(links) != 1 || links[0] != wantLink {
		t.Errorf("links = %v, want [%s]", links, wantLink)
	}
	if evs := byName["cast.validate"].Events; len(evs) != 1 || evs[0].Name != "skip" {
		t.Errorf("events = %v", evs)
	}
	// Open child clamped to root end: started 3ms in, root ended at 4ms.
	if byName["cast.validate"].DurationNS != time.Millisecond.Nanoseconds() {
		t.Errorf("open span duration = %d, want clamp to root end", byName["cast.validate"].DurationNS)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	if tr := NewTracer(TracerOptions{SampleRate: 0}); tr != nil {
		t.Fatal("SampleRate 0 should disable the tracer")
	}
	var tr *Tracer
	span := tr.StartRequest("req", SpanContext{})
	if span != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every operation must be a safe no-op on the nil span.
	span.SetAttr("k", 1)
	span.AddEvent("e")
	span.AddLink(SpanContext{TraceID: TraceID{1}, SpanID: SpanID{1}})
	span.SetError("x")
	if c := span.StartChild("child"); c != nil {
		t.Fatal("nil span returned a child")
	}
	span.End()
	if sc := span.Context(); sc.IsValid() {
		t.Error("nil span context should be invalid")
	}
	if got := tr.Traces(); got != nil {
		t.Errorf("nil tracer Traces = %v", got)
	}
	if _, ok := tr.Trace("x"); ok {
		t.Error("nil tracer Trace found something")
	}
	if st := tr.Stats(); st != (TracerStats{}) {
		t.Errorf("nil tracer stats = %+v", st)
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Error("nil span stored in context")
	}
	if SpanFromContext(nil) != nil {
		t.Error("nil context should yield nil span")
	}
}

func TestCorrelateHandlerStampsIDs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewCorrelateHandler(slog.NewJSONHandler(&buf, nil)))

	clk := newFakeClock()
	tr := testTracer(1, time.Hour, 4, clk, 0)
	span := tr.StartRequest("req", SpanContext{})
	ctx := ContextWithSpan(context.Background(), span)
	logger.InfoContext(ctx, "inside request")
	logger.Info("outside request")
	span.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d log lines", len(lines))
	}
	var inside map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &inside); err != nil {
		t.Fatal(err)
	}
	sc := span.Context()
	if inside["trace_id"] != sc.TraceID.String() || inside["span_id"] != sc.SpanID.String() {
		t.Errorf("correlated record = %v, want trace_id=%s span_id=%s", inside, sc.TraceID, sc.SpanID)
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Errorf("record outside a request got correlation attrs: %s", lines[1])
	}
}

// TestOnRetain verifies the exporter seam: the hook fires for every trace
// the tail sampler keeps, never for dropped traces, and is nil-safe.
func TestOnRetain(t *testing.T) {
	clk := newFakeClock()
	tr := testTracer(0, time.Millisecond, 4, clk, 0.5) // rate 0 would be nil; use tiny rate
	if tr != nil {
		t.Fatal("rate 0 should be a nil tracer")
	}
	var nilTracer *Tracer
	nilTracer.OnRetain(func(*TraceData) { t.Fatal("nil tracer must not call the hook") })

	tr = testTracer(0.01, 50*time.Millisecond, 4, clk, 0.99) // head roll always drops
	var got []*TraceData
	tr.OnRetain(func(td *TraceData) { got = append(got, td) })

	// Fast, no error, roll above rate: dropped — hook must not fire.
	s := tr.StartRequest("fast", SpanContext{})
	clk.Advance(time.Millisecond)
	s.End()
	if len(got) != 0 {
		t.Fatalf("hook fired for a dropped trace: %+v", got)
	}

	// Slow: retained — hook fires with the published trace.
	s = tr.StartRequest("slow", SpanContext{})
	clk.Advance(100 * time.Millisecond)
	s.End()
	if len(got) != 1 || got[0].Name != "slow" || got[0].Reason != ReasonSlow {
		t.Fatalf("hook should see the retained slow trace, got %+v", got)
	}

	// Clearing the hook stops deliveries.
	tr.OnRetain(nil)
	s = tr.StartRequest("slow2", SpanContext{})
	clk.Advance(100 * time.Millisecond)
	s.End()
	if len(got) != 1 {
		t.Fatalf("cleared hook still fired: %d deliveries", len(got))
	}
}
