package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the `le` semantics: an observation
// equal to a bound lands in that bound's bucket, anything above the last
// bound lands in +Inf, and sum/count track every observation.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 2.0001, 5, 7, 100} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []int64{2, 2, 2, 2} // (≤1): 0.5,1  (≤2): 1.5,2  (≤5): 2.0001,5  (+Inf): 7,100
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	if want := 0.5 + 1 + 1.5 + 2 + 2.0001 + 5 + 7 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds should panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestConcurrentIncrements hammers one counter, gauge and histogram from
// many goroutines; totals must be exact. Run under -race in CI.
func TestConcurrentIncrements(t *testing.T) {
	const workers, perWorker = 16, 1000
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_seconds", "", []float64{0.5})
	vec := reg.CounterVec("v_total", "", "worker")
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		odd := w%2 == 1
		go func() {
			defer wg.Done()
			// Resolve the labeled series once, then mutate lock-free.
			lane := "even"
			if odd {
				lane = "odd"
			}
			vc := vec.With(lane)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				vc.Inc()
				if odd {
					h.Observe(1) // +Inf bucket
				} else {
					h.Observe(0.25)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	bc := h.BucketCounts()
	if bc[0] != workers/2*perWorker || bc[1] != workers/2*perWorker {
		t.Fatalf("bucket split = %v, want %d each", bc, workers/2*perWorker)
	}
	if got := vec.With("even").Value() + vec.With("odd").Value(); got != workers*perWorker {
		t.Fatalf("vec total = %d, want %d", got, workers*perWorker)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name should panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestTraceCount(t *testing.T) {
	var tr *Trace
	tr.Record(Event{Action: ActionSkip}) // nil-safe no-op
	if tr.Count(ActionSkip) != 0 || tr.Events() != nil {
		t.Fatal("nil trace should record nothing")
	}
	tr = &Trace{}
	tr.Record(Event{Action: ActionSkip, Path: "/a"})
	tr.Record(Event{Action: ActionDescend, Path: "/"})
	tr.Record(Event{Action: ActionSkip, Path: "/b"})
	if tr.Count(ActionSkip) != 2 || tr.Count(ActionReject) != 0 || len(tr.Events()) != 3 {
		t.Fatalf("trace counts wrong: %+v", tr.Events())
	}
}
