package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exposition content types served by /metrics. Prometheus text 0.0.4 is
// the default and stays byte-for-byte what it always was; OpenMetrics is
// opt-in via Accept negotiation and is the only rendering that carries
// exemplars (the 0.0.4 grammar has no syntax for them).
const (
	ContentTypePrometheus  = "text/plain; version=0.0.4; charset=utf-8"
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// NegotiateExposition picks an exposition content type from an Accept
// header. OpenMetrics is chosen only when the client asks for it with a
// quality at least as high as any plain-text alternative; everything else
// — empty header, wildcards, garbage — falls back to Prometheus text, so
// existing scrapers never see a format change they didn't request.
func NegotiateExposition(accept string) string {
	omQ, textQ := -1.0, -1.0
	for _, part := range strings.Split(accept, ",") {
		mediaRange, q := parseMediaRange(part)
		if q <= 0 {
			continue
		}
		switch mediaRange {
		case "application/openmetrics-text":
			if q > omQ {
				omQ = q
			}
		case "text/plain", "text/*", "*/*", "application/*":
			if q > textQ {
				textQ = q
			}
		}
	}
	if omQ > 0 && omQ >= textQ {
		return ContentTypeOpenMetrics
	}
	return ContentTypePrometheus
}

// parseMediaRange splits one Accept list element into its lowercase media
// range and quality (default 1). Malformed q parameters degrade to 0 so a
// bad element can never outrank a well-formed one.
func parseMediaRange(part string) (string, float64) {
	fields := strings.Split(part, ";")
	mediaRange := strings.ToLower(strings.TrimSpace(fields[0]))
	q := 1.0
	for _, f := range fields[1:] {
		f = strings.TrimSpace(f)
		k, v, ok := strings.Cut(f, "=")
		if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		parsed, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || parsed < 0 || parsed > 1 {
			q = 0
			continue
		}
		q = parsed
	}
	return mediaRange, q
}

// openMetricsFamilyName strips the conventional _total suffix from a
// counter's name: OpenMetrics names the family without it and the sample
// with it (castd_casts_total -> family castd_casts, sample
// castd_casts_total). Counters not following the convention keep their
// name unchanged.
func openMetricsFamilyName(name string, kind metricKind) string {
	switch kind {
	case counterKind, counterFuncKind, counterSamplesKind:
		return strings.TrimSuffix(name, "_total")
	}
	return name
}

// formatExemplar renders the OpenMetrics exemplar suffix for a bucket
// line: ` # {trace_id="...",span_id="..."} value timestamp`.
func formatExemplar(e *Exemplar) string {
	var b strings.Builder
	b.WriteString(" # {")
	fmt.Fprintf(&b, `trace_id="%s",span_id="%s"`, escapeLabel(e.TraceID), escapeLabel(e.SpanID))
	b.WriteString("} ")
	b.WriteString(formatFloat(e.Value))
	if !e.Time.IsZero() {
		sec := float64(e.Time.UnixNano()) / 1e9
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(sec, 'f', 3, 64))
	}
	return b.String()
}

// WriteOpenMetrics renders every registered family in the OpenMetrics 1.0
// text format: counter families named without their _total suffix,
// histogram buckets carrying exemplars where one has been recorded, and
// the mandatory `# EOF` terminator. Ordering matches WritePrometheus so
// the two expositions diff cleanly.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		famName := openMetricsFamilyName(f.name, f.kind)
		fmt.Fprintf(&b, "# HELP %s %s\n", famName, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", famName, f.kind.promType())
		switch f.kind {
		case counterFuncKind, gaugeFuncKind:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
			continue
		case counterSamplesKind, gaugeSamplesKind:
			samples := f.samplesFn()
			sort.Slice(samples, func(i, j int) bool {
				return strings.Join(samples[i].Labels, "\x00") < strings.Join(samples[j].Labels, "\x00")
			})
			for _, smp := range samples {
				if len(smp.Labels) != len(f.labels) {
					continue
				}
				ls := labelString(f.labels, smp.Labels, "", "")
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatFloat(smp.Value))
			}
			continue
		}
		f.mu.Lock()
		ser := append([]*series(nil), f.order...)
		f.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool {
			return strings.Join(ser[i].labelValues, "\x00") < strings.Join(ser[j].labelValues, "\x00")
		})
		for _, s := range ser {
			ls := labelString(f.labels, s.labelValues, "", "")
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.counter.Value())
			case gaugeKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.gauge.Value())
			case histogramKind:
				cum := int64(0)
				for i := range s.hist.buckets {
					cum += s.hist.buckets[i].Load()
					leVal := "+Inf"
					if i < len(s.hist.bounds) {
						leVal = formatFloat(s.hist.bounds[i])
					}
					le := labelString(f.labels, s.labelValues, "le", leVal)
					fmt.Fprintf(&b, "%s_bucket%s %d", f.name, le, cum)
					if e := s.hist.BucketExemplar(i); e != nil {
						b.WriteString(formatExemplar(e))
					}
					b.WriteByte('\n')
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatFloat(s.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, s.hist.Count())
			}
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}
