package telemetry

// Log/trace correlation: every slog record emitted while a span is active
// carries that span's trace_id and span_id, so an operator can pivot from
// a log line to the request's waterfall on /debug/traces and back. The
// contract is context-based — handlers log with the request context, the
// middleware has already planted the span there — which keeps call sites
// free of explicit id plumbing.

import (
	"context"
	"log/slog"
)

// CorrelateHandler is a slog.Handler wrapper that appends trace_id and
// span_id attributes to any record whose context carries a span. Records
// logged outside a request pass through untouched.
type CorrelateHandler struct {
	inner slog.Handler
}

// NewCorrelateHandler wraps inner with span correlation.
func NewCorrelateHandler(inner slog.Handler) *CorrelateHandler {
	return &CorrelateHandler{inner: inner}
}

// Enabled implements slog.Handler.
func (h *CorrelateHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler.
func (h *CorrelateHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := SpanFromContext(ctx); s != nil {
		sc := s.Context()
		r.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (h *CorrelateHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &CorrelateHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h *CorrelateHandler) WithGroup(name string) slog.Handler {
	return &CorrelateHandler{inner: h.inner.WithGroup(name)}
}
