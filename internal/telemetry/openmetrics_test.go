package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildExemplarRegistry mirrors buildExerciseRegistry's families and
// values exactly, but records the histogram observations through
// ObserveExemplar with fixed trace identities — so the Prometheus
// rendering of this registry must stay byte-identical to the existing
// exposition.golden (the 0.0.4 format has no exemplar syntax), while the
// OpenMetrics rendering gains exemplar suffixes.
func buildExemplarRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("cast_subtrees_skipped_total", "Subtrees skipped because (τ, τ') ∈ R_sub.")
	c.Add(42)
	g := reg.Gauge("http_in_flight_requests", "Requests currently being served.")
	g.Set(3)
	v := reg.CounterVec("http_requests_total", "Requests by route and status code.", "route", "code")
	v.With("cast", "200").Add(7)
	v.With("cast", "404").Add(1)
	v.With("he\"llo\nwor\\ld", "200").Inc()
	at := time.Unix(1700000000, 123000000).UTC()
	h := reg.Histogram("registry_compile_seconds", "Schema-pair compile latency.", []float64{0.01, 0.1, 1})
	for i, o := range []float64{0.005, 0.05, 0.5, 5} {
		h.ObserveExemplar(o, "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", at.Add(time.Duration(i)*time.Second))
	}
	hv := reg.HistogramVec("http_request_duration_seconds", "Request latency by route.", []float64{0.25}, "route")
	hv.With("cast").ObserveExemplar(0.125, "abad1deaabad1deaabad1deaabad1dea", "b7ad6b7169203331", at)
	hv.With("cast").Observe(0.5) // +Inf bucket left without an exemplar
	reg.CounterFunc("registry_hits_total", "Pair-cache hits.", func() float64 { return 9 })
	reg.GaugeFunc("registry_pairs", "Cached compiled pairs.", func() float64 { return 2 })
	return reg
}

// TestOpenMetricsGolden locks the OpenMetrics exposition byte-for-byte
// against testdata/openmetrics.golden (regenerate with
// `go test -run Golden -update`).
func TestOpenMetricsGolden(t *testing.T) {
	var b strings.Builder
	if err := buildExemplarRegistry().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "openmetrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Fatalf("OpenMetrics exposition drifted from golden file.\n-- got --\n%s\n-- want --\n%s", b.String(), want)
	}
	if !strings.HasSuffix(b.String(), "# EOF\n") {
		t.Fatal("OpenMetrics exposition must end with # EOF")
	}
}

// TestPrometheusUnchangedByExemplars is the satellite's core guarantee: a
// registry full of recorded exemplars renders the Prometheus text format
// byte-for-byte identically to the exemplar-free exercise registry.
func TestPrometheusUnchangedByExemplars(t *testing.T) {
	var withEx, without strings.Builder
	if err := buildExemplarRegistry().WritePrometheus(&withEx); err != nil {
		t.Fatal(err)
	}
	if err := buildExerciseRegistry().WritePrometheus(&without); err != nil {
		t.Fatal(err)
	}
	if withEx.String() != without.String() {
		t.Fatalf("exemplars leaked into the Prometheus rendering.\n-- with --\n%s\n-- without --\n%s", withEx.String(), without.String())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "exposition.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if withEx.String() != string(want) {
		t.Fatal("Prometheus rendering with exemplars drifted from exposition.golden")
	}
}

func TestOpenMetricsExemplarSyntax(t *testing.T) {
	var b strings.Builder
	if err := buildExemplarRegistry().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The 0.25 bucket holds the 0.125 observation's exemplar with its
	// timestamp; the +Inf bucket saw only a plain Observe so it has none.
	wantLine := `http_request_duration_seconds_bucket{route="cast",le="0.25"} 1 # {trace_id="abad1deaabad1deaabad1deaabad1dea",span_id="b7ad6b7169203331"} 0.125 1700000000.123`
	if !strings.Contains(out, wantLine+"\n") {
		t.Fatalf("missing exemplar line %q in:\n%s", wantLine, out)
	}
	if strings.Contains(out, `http_request_duration_seconds_bucket{route="cast",le="+Inf"} 2 #`) {
		t.Fatalf("+Inf bucket should have no exemplar:\n%s", out)
	}
	// Counter families drop _total in HELP/TYPE but keep it on samples.
	if !strings.Contains(out, "# TYPE cast_subtrees_skipped counter\n") {
		t.Fatalf("counter TYPE should strip _total:\n%s", out)
	}
	if !strings.Contains(out, "cast_subtrees_skipped_total 42\n") {
		t.Fatalf("counter sample should keep _total:\n%s", out)
	}
}

func TestNegotiateExposition(t *testing.T) {
	cases := []struct {
		accept string
		want   string
	}{
		{"", ContentTypePrometheus},
		{"*/*", ContentTypePrometheus},
		{"text/plain", ContentTypePrometheus},
		{"text/plain; version=0.0.4", ContentTypePrometheus},
		{"application/openmetrics-text", ContentTypeOpenMetrics},
		{"application/openmetrics-text; version=1.0.0; charset=utf-8", ContentTypeOpenMetrics},
		// The canonical Prometheus scraper header: OpenMetrics preferred.
		{"application/openmetrics-text;version=1.0.0;q=0.5,text/plain;version=0.0.4;q=0.3", ContentTypeOpenMetrics},
		// Client explicitly prefers plain text.
		{"application/openmetrics-text;q=0.1, text/plain;q=0.9", ContentTypePrometheus},
		// q=0 means "never".
		{"application/openmetrics-text;q=0", ContentTypePrometheus},
		{"application/openmetrics-text;q=0, */*;q=0.1", ContentTypePrometheus},
		// Equal quality: the richer format wins.
		{"application/openmetrics-text, text/plain", ContentTypeOpenMetrics},
		// Garbage degrades safely.
		{"blorp;;;q=zzz", ContentTypePrometheus},
		{"application/openmetrics-text;q=notanumber", ContentTypePrometheus},
		{"APPLICATION/OPENMETRICS-TEXT", ContentTypeOpenMetrics},
	}
	for _, tc := range cases {
		if got := NegotiateExposition(tc.accept); got != tc.want {
			t.Errorf("NegotiateExposition(%q) = %q, want %q", tc.accept, got, tc.want)
		}
	}
}
