package telemetry

import "testing"

// FuzzTraceparent hardens the one header castd parses from untrusted
// clients. Any byte string must either be rejected (ok=false) or decode to
// a valid span context that survives a format→parse round trip unchanged —
// and parsing must never panic, since a malformed traceparent is the
// cheapest possible thing to put on the wire.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01") // forbidden version
	f.Add("00-00000000000000000000000000000000-b7ad6b7169203331-01") // zero trace id
	f.Add("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra")
	f.Add("")
	f.Add("garbage")
	f.Add("00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")

	f.Fuzz(func(t *testing.T, header string) {
		sc, ok := ParseTraceparent(header)
		if !ok {
			if sc != (SpanContext{}) {
				t.Fatalf("rejected header leaked a non-zero context: %+v", sc)
			}
			return
		}
		if !sc.IsValid() {
			t.Fatalf("accepted header produced an invalid context: %+v", sc)
		}
		rt, ok2 := ParseTraceparent(FormatTraceparent(sc))
		if !ok2 || rt != sc {
			t.Fatalf("round trip not stable: %q -> %+v -> %+v (ok=%v)", header, sc, rt, ok2)
		}
	})
}
