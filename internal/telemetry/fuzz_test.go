package telemetry

import "testing"

// FuzzTraceparent hardens the one header castd parses from untrusted
// clients. Any byte string must either be rejected (ok=false) or decode to
// a valid span context that survives a format→parse round trip unchanged —
// and parsing must never panic, since a malformed traceparent is the
// cheapest possible thing to put on the wire.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01") // forbidden version
	f.Add("00-00000000000000000000000000000000-b7ad6b7169203331-01") // zero trace id
	f.Add("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra")
	f.Add("")
	f.Add("garbage")
	f.Add("00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")

	f.Fuzz(func(t *testing.T, header string) {
		sc, ok := ParseTraceparent(header)
		if !ok {
			if sc != (SpanContext{}) {
				t.Fatalf("rejected header leaked a non-zero context: %+v", sc)
			}
			return
		}
		if !sc.IsValid() {
			t.Fatalf("accepted header produced an invalid context: %+v", sc)
		}
		rt, ok2 := ParseTraceparent(FormatTraceparent(sc))
		if !ok2 || rt != sc {
			t.Fatalf("round trip not stable: %q -> %+v -> %+v (ok=%v)", header, sc, rt, ok2)
		}
	})
}

// FuzzNegotiate hardens the /metrics Accept-header parser: any byte string
// must resolve — without panicking — to exactly one of the two exposition
// content types, and the empty header must keep its Prometheus default so
// a fuzz-discovered quirk can never flip existing scrapers to OpenMetrics.
func FuzzNegotiate(f *testing.F) {
	f.Add("")
	f.Add("*/*")
	f.Add("text/plain; version=0.0.4; charset=utf-8")
	f.Add("application/openmetrics-text; version=1.0.0; charset=utf-8")
	f.Add("application/openmetrics-text;version=1.0.0;q=0.5,text/plain;version=0.0.4;q=0.3")
	f.Add("application/openmetrics-text;q=0, */*;q=0.1")
	f.Add("application/openmetrics-text;q=notanumber")
	f.Add("a,b;q=,c;;q=1.0.0,APPLICATION/OPENMETRICS-TEXT ; Q=0.9")
	f.Add(",,;q=;,")

	f.Fuzz(func(t *testing.T, accept string) {
		got := NegotiateExposition(accept)
		if got != ContentTypePrometheus && got != ContentTypeOpenMetrics {
			t.Fatalf("NegotiateExposition(%q) returned unknown content type %q", accept, got)
		}
		if accept == "" && got != ContentTypePrometheus {
			t.Fatalf("empty Accept must default to Prometheus text, got %q", got)
		}
	})
}
