// Package telemetry is the repository's dependency-free observability
// core: atomic counters, gauges and fixed-bucket histograms organized into
// labeled families, rendered in the Prometheus text exposition format, plus
// the structured decision-trace API that explains individual cast verdicts.
//
// The package exists because the paper's whole value proposition is *work
// avoided* — subtrees skipped via R_sub, documents rejected early via
// R_dis, symbols never scanned thanks to immediate decision automata — and
// that economy must be observable in standard tooling once the daemon
// serves real traffic.
//
// Concurrency contract: every metric mutation (Counter.Add, Gauge.Set,
// Histogram.Observe) is a handful of atomic operations and never takes a
// lock, so metrics may be touched from request handlers and batch workers
// freely. Family lookups (CounterVec.With etc.) do take a short mutex and
// are meant to be resolved once at construction time, not per event —
// the per-element validate loop must stay atomics-only.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use, but counters that should be exported must be created through a
// Registry so they render at scrape time.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0 for the Prometheus
// counter contract; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, cache
// residency). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern; histograms use it for their observation sum.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Exemplar ties one concrete observation to the trace that produced it:
// an operator looking at a latency bucket on a dashboard can jump straight
// to a representative request's span tree instead of guessing. Rendered in
// the OpenMetrics exposition (`# {trace_id=...,span_id=...} value ts`) and
// exported on OTLP histogram data points; the Prometheus text 0.0.4 format
// has no exemplar syntax, so that rendering is byte-for-byte unchanged.
type Exemplar struct {
	TraceID string    `json:"traceId"`
	SpanID  string    `json:"spanId"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"time,omitempty"`
}

// Histogram counts observations into fixed buckets. An observation v lands
// in the first bucket whose upper bound satisfies v <= bound (Prometheus
// `le` semantics); anything above the last bound lands in the implicit
// +Inf bucket. Observe is lock-free: one atomic add per bucket hit, one
// for the count, and a CAS loop for the float sum.
//
// Every bucket additionally carries one exemplar slot — an atomic pointer
// updated last-write-wins by ObserveExemplar. Plain Observe never touches
// the slots, so a daemon with tracing off (the only caller of
// ObserveExemplar is a request that owns a live span) pays nothing for the
// feature beyond len(bounds)+1 idle pointers.
type Histogram struct {
	bounds    []float64      // sorted upper bounds, exclusive of +Inf
	buckets   []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count     atomic.Int64
	sum       atomicFloat
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, parallel to buckets
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:    b,
		buckets:   make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// bucketIndex returns the bucket an observation of v lands in.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := h.bucketIndex(v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveExemplar records one observation and stamps the landing bucket's
// exemplar slot with the observing request's trace identity (last write
// wins — the freshest representative is the useful one). An empty traceID
// degrades to a plain Observe, so callers can pass their maybe-nil span's
// ids unconditionally.
func (h *Histogram) ObserveExemplar(v float64, traceID, spanID string, at time.Time) {
	i := h.bucketIndex(v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	if traceID == "" {
		return
	}
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, SpanID: spanID, Value: v, Time: at})
}

// BucketExemplar returns the exemplar currently held by bucket i (the last
// index is the +Inf bucket), or nil when none has been recorded.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// ObserveN records n observations of the same value v in one shot. The
// bulk path exists for bridging pre-aggregated histograms (runtime/metrics
// publishes sched-latency buckets that can gain millions of events between
// samples); n <= 0 is a no-op.
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(n)
	h.count.Add(n)
	h.sum.add(v * float64(n))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket. For tests and ad-hoc inspection.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// DefBuckets returns the conventional latency bucket bounds (seconds),
// matching the Prometheus client default.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// ExponentialBuckets returns n bounds starting at start, each factor times
// the previous. start must be > 0, factor > 1, n >= 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
