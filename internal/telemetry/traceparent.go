package telemetry

// W3C Trace Context (https://www.w3.org/TR/trace-context/) traceparent
// header codec. Only the traceparent field is implemented — tracestate is
// vendor baggage the daemon neither reads nor owes anyone — and only the
// parts castd needs: extract an inbound (trace-id, parent-id, sampled)
// triple, inject the local span context on responses.

import (
	"encoding/hex"
	"strings"
)

// sampledFlag is the only trace-flags bit the spec defines.
const sampledFlag = 0x01

// ParseTraceparent decodes a traceparent header value. It returns ok=false
// on anything malformed — wrong field count or width, non-hex digits, the
// forbidden version ff, an all-zero trace or parent id — in which case the
// caller starts a fresh trace instead of propagating garbage. Per spec,
// versions other than 00 are accepted as long as the 00-format prefix
// parses (fields beyond the fourth are ignored then).
func ParseTraceparent(header string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	version, traceID, parentID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || len(traceID) != 32 || len(parentID) != 16 || len(flags) != 2 {
		return SpanContext{}, false
	}
	vb, err := hex.DecodeString(version)
	if err != nil || vb[0] == 0xff {
		return SpanContext{}, false
	}
	if vb[0] == 0 && len(parts) != 4 {
		// Version 00 defines exactly four fields.
		return SpanContext{}, false
	}
	var sc SpanContext
	tb, err := hex.DecodeString(traceID)
	if err != nil {
		return SpanContext{}, false
	}
	copy(sc.TraceID[:], tb)
	pb, err := hex.DecodeString(parentID)
	if err != nil {
		return SpanContext{}, false
	}
	copy(sc.SpanID[:], pb)
	fb, err := hex.DecodeString(flags)
	if err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = fb[0]&sampledFlag != 0
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

// FormatTraceparent renders a span context as a version-00 traceparent
// value, suitable for response headers and outbound requests.
func FormatTraceparent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}
