package telemetry

// Span tracing is the third leg of the telemetry layer: metrics say how
// much work the casters saved in aggregate, decision traces say which
// decisions saved it inside one validation, and spans say where one
// request's wall-clock time went — parse vs. registry lookup (or a
// singleflight compile another request is paying for) vs. the cast itself.
//
// The design follows the same discipline as the metrics core: stdlib only,
// no lock on any per-element path. Spans are created a handful of times
// per request (handler, registry, cast), never per element; a nil *Tracer
// or nil *Span turns every operation into a nil check, so a daemon started
// with sampling off pays nothing but those checks.
//
// Sampling is tail-based: every request of an enabled tracer records its
// spans, and the keep/drop decision is made when the root span ends, so
// slow requests and error requests are always retained however low the
// head probability — exactly the requests an operator goes looking for.
// Retained traces land in a fixed-size ring buffer served by
// GET /debug/traces; the ring mutex is held for a pointer swap once per
// retained request.

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-context trace id: 16 bytes, rendered as 32 hex
// digits. The zero value is invalid (per spec) and means "no trace".
type TraceID [16]byte

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// SpanID is a W3C trace-context span id: 8 bytes, 16 hex digits.
type SpanID [8]byte

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// SpanContext is the propagatable identity of a span: what travels in a
// traceparent header and what a child or a link refers to.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled carries the inbound trace-flags sampled bit. It is
	// propagated on outbound headers but does not override the local
	// tail-sampling decision (a remote head-sampler cannot know which of
	// our requests will turn out slow).
	Sampled bool
}

// IsValid reports whether both ids are non-zero.
func (sc SpanContext) IsValid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Attr is one span attribute. Values are kept as any and marshalled by
// encoding/json at export time; use strings, integers, floats or bools.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanEvent is a point-in-time annotation inside a span (the bridge from
// decision-trace events: one skip/reject decision becomes one event).
type SpanEvent struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed operation inside a request. A Span is single-goroutine
// state, like a Stats struct: the goroutine that Started it mutates it and
// Ends it. All methods are safe on a nil receiver (no-ops), so callers
// thread optional spans without branching.
type Span struct {
	req    *requestTrace
	ctx    SpanContext
	parent SpanID
	name   string
	start  time.Time
	end    time.Time
	attrs  []Attr
	events []SpanEvent
	links  []SpanContext
	errMsg string
	root   bool
}

// Context returns the span's propagatable identity (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetAttr attaches one key/value attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AddEvent appends a point-in-time event stamped with the tracer clock.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.events = append(s.events, SpanEvent{Name: name, Time: s.req.tracer.clock(), Attrs: attrs})
}

// AddLink records a causal link to another span context — e.g. a registry
// lookup that coalesced onto a compile another request is running links to
// that request's span instead of pretending it did the work itself.
func (s *Span) AddLink(sc SpanContext) {
	if s == nil || !sc.IsValid() {
		return
	}
	s.links = append(s.links, sc)
}

// SetError marks the span failed. Error traces are always retained by the
// tail sampler.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.errMsg = msg
}

// StartChild opens a child span under s, in the same request.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.req.startSpan(name, s.ctx.SpanID)
}

// End stamps the span's end time. Ending the root span finalizes the
// request: the tail sampler decides keep/drop and a kept trace is
// published to the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.end = s.req.tracer.clock()
	if s.root {
		s.req.tracer.finish(s.req, s)
	}
}

// requestTrace collects the spans of one request. Span creation takes its
// mutex — a few times per request, never per element — because batch
// handlers may open child spans from pooled workers.
type requestTrace struct {
	tracer  *Tracer
	traceID TraceID

	mu    sync.Mutex
	spans []*Span
}

func (rt *requestTrace) startSpan(name string, parent SpanID) *Span {
	s := &Span{
		req:    rt,
		ctx:    SpanContext{TraceID: rt.traceID, SpanID: rt.tracer.newSpanID(), Sampled: true},
		parent: parent,
		name:   name,
		start:  rt.tracer.clock(),
	}
	rt.mu.Lock()
	rt.spans = append(rt.spans, s)
	rt.mu.Unlock()
	return s
}

// SpanData is the exported, JSON-ready form of one finished span.
type SpanData struct {
	TraceID    string      `json:"traceId"`
	SpanID     string      `json:"spanId"`
	ParentID   string      `json:"parentId,omitempty"`
	Name       string      `json:"name"`
	Start      time.Time   `json:"start"`
	DurationNS int64       `json:"durationNs"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Events     []SpanEvent `json:"events,omitempty"`
	// Links name other spans as "traceid:spanid" pairs.
	Links []string `json:"links,omitempty"`
	Error string   `json:"error,omitempty"`
}

// TraceData is one retained trace: the root summary plus every span.
type TraceData struct {
	TraceID    string     `json:"traceId"`
	Name       string     `json:"name"`
	Start      time.Time  `json:"start"`
	DurationNS int64      `json:"durationNs"`
	Error      string     `json:"error,omitempty"`
	Reason     string     `json:"reason"` // why the tail sampler kept it
	Spans      []SpanData `json:"spans"`
}

// Retention reasons reported in TraceData.Reason.
const (
	ReasonSampled = "sampled" // head probability
	ReasonSlow    = "slow"    // root duration >= SlowThreshold
	ReasonError   = "error"   // a span recorded an error
)

// TracerOptions configure a Tracer.
type TracerOptions struct {
	// SampleRate is the head probability in [0, 1] of retaining a trace
	// that is neither slow nor failed. Slow and error traces are always
	// retained. A rate of 1 retains everything (the ring still bounds
	// memory).
	SampleRate float64
	// SlowThreshold marks a trace slow when its root span lasts at least
	// this long; 0 means DefaultSlowThreshold.
	SlowThreshold time.Duration
	// Capacity bounds the ring of retained traces; 0 means
	// DefaultTraceCapacity.
	Capacity int

	// clock and randFloat are test seams.
	clock     func() time.Time
	randFloat func() float64
}

// DefaultSlowThreshold is the slow-trace cutoff when none is configured.
const DefaultSlowThreshold = 250 * time.Millisecond

// DefaultTraceCapacity is the retained-trace ring size when none is
// configured.
const DefaultTraceCapacity = 256

// TracerStats counts the tail sampler's decisions.
type TracerStats struct {
	Started  uint64 `json:"started"`
	Retained uint64 `json:"retained"`
	Dropped  uint64 `json:"dropped"`
}

// Tracer owns the id generator, the tail sampler and the retained-trace
// ring. A nil *Tracer is a disabled tracer: StartRequest returns a nil
// span and every downstream operation no-ops.
type Tracer struct {
	sampleRate float64
	slow       time.Duration
	clock      func() time.Time
	randFloat  func() float64

	started, retained, dropped atomic.Uint64

	// onRetain, when set, observes every trace the tail sampler keeps —
	// the seam the OTLP exporter hangs off: exporting only retained traces
	// means the collector sees exactly what /debug/traces shows.
	onRetain atomic.Pointer[func(*TraceData)]

	mu   sync.Mutex
	ring []*TraceData // capacity-bounded; next points at the oldest slot
	next int
	full bool
}

// OnRetain registers fn to be called with every trace the tail sampler
// retains, after it is published to the ring and outside the ring mutex.
// The TraceData is shared with the ring and must be treated as immutable.
// Nil-safe; a nil fn clears the hook.
func (t *Tracer) OnRetain(fn func(*TraceData)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.onRetain.Store(nil)
		return
	}
	t.onRetain.Store(&fn)
}

// NewTracer builds a tracer. A SampleRate <= 0 returns nil — the disabled
// tracer — because with tail retention also off there is nothing a
// recording tracer could ever publish.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.SampleRate <= 0 {
		return nil
	}
	if opts.SampleRate > 1 {
		opts.SampleRate = 1
	}
	t := &Tracer{
		sampleRate: opts.SampleRate,
		slow:       opts.SlowThreshold,
		clock:      opts.clock,
		randFloat:  opts.randFloat,
	}
	if t.slow <= 0 {
		t.slow = DefaultSlowThreshold
	}
	if t.clock == nil {
		t.clock = time.Now
	}
	if t.randFloat == nil {
		t.randFloat = rand.Float64
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t.ring = make([]*TraceData, 0, capacity)
	return t
}

// newTraceID draws a non-zero random trace id. rand/v2's global generator
// is goroutine-sharded, so this takes no lock.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (8 * i))
			id[8+i] = byte(lo >> (8 * i))
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * i))
		}
	}
	return id
}

// StartRequest opens the root span of a new request. A valid parent
// context (from an inbound traceparent header) joins its trace and becomes
// the root span's parent; otherwise a fresh trace id is drawn. Returns nil
// on a nil tracer.
func (t *Tracer) StartRequest(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	rt := &requestTrace{tracer: t}
	var parentSpan SpanID
	if parent.IsValid() {
		rt.traceID = parent.TraceID
		parentSpan = parent.SpanID
	} else {
		rt.traceID = t.newTraceID()
	}
	s := rt.startSpan(name, parentSpan)
	s.root = true
	return s
}

// finish runs the tail sampler on a completed request and publishes kept
// traces to the ring.
func (t *Tracer) finish(rt *requestTrace, root *Span) {
	rt.mu.Lock()
	spans := rt.spans
	rt.mu.Unlock()

	reason := ""
	switch {
	case hasError(spans):
		reason = ReasonError
	case root.end.Sub(root.start) >= t.slow:
		reason = ReasonSlow
	case t.randFloat() < t.sampleRate:
		reason = ReasonSampled
	default:
		t.dropped.Add(1)
		return
	}
	t.retained.Add(1)

	td := &TraceData{
		TraceID:    rt.traceID.String(),
		Name:       root.name,
		Start:      root.start,
		DurationNS: root.end.Sub(root.start).Nanoseconds(),
		Error:      root.errMsg,
		Reason:     reason,
		Spans:      make([]SpanData, 0, len(spans)),
	}
	for _, s := range spans {
		end := s.end
		if end.IsZero() {
			// A span left open when the request finished (a handler bug,
			// not a reason to lose the trace): clamp to the root's end.
			end = root.end
		}
		sd := SpanData{
			TraceID:    s.ctx.TraceID.String(),
			SpanID:     s.ctx.SpanID.String(),
			Name:       s.name,
			Start:      s.start,
			DurationNS: end.Sub(s.start).Nanoseconds(),
			Attrs:      s.attrs,
			Events:     s.events,
			Error:      s.errMsg,
		}
		if !s.parent.IsZero() {
			sd.ParentID = s.parent.String()
		}
		for _, l := range s.links {
			sd.Links = append(sd.Links, l.TraceID.String()+":"+l.SpanID.String())
		}
		td.Spans = append(td.Spans, sd)
	}

	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, td)
	} else {
		t.ring[t.next] = td
		t.next = (t.next + 1) % cap(t.ring)
		t.full = true
	}
	t.mu.Unlock()

	if fn := t.onRetain.Load(); fn != nil {
		(*fn)(td)
	}
}

func hasError(spans []*Span) bool {
	for _, s := range spans {
		if s.errMsg != "" {
			return true
		}
	}
	return false
}

// Traces snapshots the retained traces, newest first. Nil-safe.
func (t *Tracer) Traces() []*TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*TraceData, 0, len(t.ring))
	// The ring is ordered oldest → newest starting at next (when full) or
	// at 0 (while filling); walk it backwards.
	n := len(t.ring)
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + n) % n
		if !t.full {
			idx = n - 1 - i
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Trace returns the retained trace with the given hex id. Nil-safe.
func (t *Tracer) Trace(traceID string) (*TraceData, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].TraceID == traceID {
			return t.ring[i], true
		}
	}
	return nil, false
}

// Stats snapshots the sampler counters. Nil-safe.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	return TracerStats{
		Started:  t.started.Load(),
		Retained: t.retained.Load(),
		Dropped:  t.dropped.Load(),
	}
}

// spanCtxKey carries the active *Span through a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span. A nil span returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
