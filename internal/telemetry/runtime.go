package telemetry

// RuntimeCollector bridges the Go runtime's own health counters into a
// metrics Registry: GC pauses, scheduler latencies, heap/stack footprint,
// goroutine/thread counts. The daemon's cast metrics say how much work the
// paper's relations saved; these say whether the *process* is healthy —
// the first thing an operator looks at when a node's latency drifts.
//
// Sampling runs on a ticker, not at scrape time: runtime.ReadMemStats
// stops the world briefly, and a scrape-time read would let every
// Prometheus client induce STW pauses at its own cadence. The ticker pays
// that cost at a rate the operator chose, stores the readings in atomics,
// and the scrape just formats them.
//
// The two histogram families are delta-bridged from runtime/metrics'
// pre-aggregated Float64Histograms: each sample diffs the runtime's
// per-bucket counts against the previous sample and feeds the increments
// through Histogram.ObserveN with the bucket's upper bound as the
// representative value. Scheduler latencies can accumulate millions of
// events between samples, so a per-event replay is not an option.

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Names of the runtime/metrics samples the collector reads. Unknown names
// read as KindBad and are skipped, so a runtime that drops one of these
// degrades that family to zero instead of breaking the collector.
const (
	rmGCPauses  = "/gc/pauses:seconds"
	rmSchedLat  = "/sched/latencies:seconds"
	rmGCCycles  = "/gc/cycles/total:gc-cycles"
	rmCgoCalls  = "/cgo/go-to-c-calls:calls"
	rmGoroutine = "/sched/goroutines:goroutines"
)

// RuntimeCollector samples runtime health on a ticker and exposes it
// through a Registry. All methods are safe on a nil receiver.
type RuntimeCollector struct {
	interval time.Duration

	// Ticker-written, scrape-read process gauges.
	heapAlloc, heapInuse, heapIdle, heapObjects atomic.Uint64
	stackInuse, sysBytes, nextGC                atomic.Uint64
	mallocs, frees, gcCycles, cgoCalls          atomic.Uint64
	goroutines, threads                         atomic.Int64
	gcCPUFraction                               atomic.Uint64 // float64 bits
	samplesTaken                                atomic.Uint64
	lastSampleUnixNano                          atomic.Int64

	gcPauses *Histogram // go_gc_pause_seconds
	schedLat *Histogram // go_sched_latencies_seconds

	// Sample-to-sample state; mu also serializes concurrent Sample calls.
	mu           sync.Mutex
	rmSamples    []metrics.Sample
	prevGCPause  []uint64
	prevSchedLat []uint64

	startOnce, stopOnce sync.Once
	stop                chan struct{}
	done                chan struct{}
}

// NewRuntimeCollector registers the go_* / castd_runtime_* families on reg
// and takes one immediate sample so the very first scrape sees live
// values. Start launches the ticker; interval <= 0 means no background
// sampling (the construction-time sample is all the process ever reports).
func NewRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	c := &RuntimeCollector{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	c.rmSamples = []metrics.Sample{
		{Name: rmGCPauses},
		{Name: rmSchedLat},
		{Name: rmGCCycles},
		{Name: rmCgoCalls},
		{Name: rmGoroutine},
	}

	gauge := func(name, help string, v *atomic.Uint64) {
		reg.GaugeFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter := func(name, help string, v *atomic.Uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	reg.GaugeFunc("go_goroutines", "Goroutines at the last runtime sample.",
		func() float64 { return float64(c.goroutines.Load()) })
	reg.GaugeFunc("go_threads", "OS threads created by the runtime (threadcreate profile count).",
		func() float64 { return float64(c.threads.Load()) })
	gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", &c.heapAlloc)
	gauge("go_memstats_heap_inuse_bytes", "Bytes in in-use heap spans.", &c.heapInuse)
	gauge("go_memstats_heap_idle_bytes", "Bytes in idle (unused) heap spans.", &c.heapIdle)
	gauge("go_memstats_heap_objects", "Allocated heap objects.", &c.heapObjects)
	gauge("go_memstats_stack_inuse_bytes", "Bytes in goroutine stack spans.", &c.stackInuse)
	gauge("go_memstats_sys_bytes", "Total bytes obtained from the OS.", &c.sysBytes)
	gauge("go_memstats_next_gc_bytes", "Heap size target of the next GC cycle.", &c.nextGC)
	counter("go_memstats_mallocs_total", "Cumulative heap objects allocated.", &c.mallocs)
	counter("go_memstats_frees_total", "Cumulative heap objects freed.", &c.frees)
	counter("go_gc_cycles_total", "Completed GC cycles.", &c.gcCycles)
	counter("go_cgo_calls_total", "Cumulative cgo calls made by the process.", &c.cgoCalls)
	reg.GaugeFunc("go_gc_cpu_fraction", "Fraction of available CPU time used by the GC since process start.",
		func() float64 { return math.Float64frombits(c.gcCPUFraction.Load()) })

	// 1µs .. ~4s in powers of four: wide enough for both sub-millisecond
	// sched latencies and pathological multi-second pauses.
	bounds := ExponentialBuckets(1e-6, 4, 12)
	c.gcPauses = reg.Histogram("go_gc_pause_seconds",
		"Stop-the-world GC pause durations, delta-bridged from runtime/metrics.", bounds)
	c.schedLat = reg.Histogram("go_sched_latencies_seconds",
		"Time goroutines spent runnable before running, delta-bridged from runtime/metrics.", bounds)

	counter("castd_runtime_samples_total", "Runtime health samples taken.", &c.samplesTaken)
	reg.GaugeFunc("castd_runtime_last_sample_timestamp_seconds",
		"Unix time of the last runtime health sample (staleness signal).",
		func() float64 { return float64(c.lastSampleUnixNano.Load()) / float64(time.Second) })

	c.Sample()
	return c
}

// Start launches the background sampling loop. Safe to call once; a
// collector constructed with interval <= 0 never starts a goroutine.
func (c *RuntimeCollector) Start() {
	if c == nil || c.interval <= 0 {
		return
	}
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			t := time.NewTicker(c.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					c.Sample()
				case <-c.stop:
					return
				}
			}
		}()
	})
}

// Stop terminates the sampling loop and waits for it to exit. Safe to call
// without Start and more than once.
func (c *RuntimeCollector) Stop() {
	if c == nil || c.interval <= 0 {
		return
	}
	c.stopOnce.Do(func() {
		close(c.stop)
		c.startOnce.Do(func() { close(c.done) }) // never started: unblock the wait
		<-c.done
	})
}

// Sample takes one reading: a batched runtime/metrics read, a ReadMemStats
// (brief stop-the-world — this is why sampling is ticker-paced), and the
// threadcreate profile count. Exported for tests and benchmarks.
func (c *RuntimeCollector) Sample() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	metrics.Read(c.rmSamples)
	for i := range c.rmSamples {
		s := &c.rmSamples[i]
		switch s.Name {
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				bridgeFloat64Histogram(c.gcPauses, s.Value.Float64Histogram(), &c.prevGCPause)
			}
		case rmSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				bridgeFloat64Histogram(c.schedLat, s.Value.Float64Histogram(), &c.prevSchedLat)
			}
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				c.gcCycles.Store(s.Value.Uint64())
			}
		case rmCgoCalls:
			if s.Value.Kind() == metrics.KindUint64 {
				c.cgoCalls.Store(s.Value.Uint64())
			}
		case rmGoroutine:
			if s.Value.Kind() == metrics.KindUint64 {
				c.goroutines.Store(int64(s.Value.Uint64()))
			} else {
				c.goroutines.Store(int64(runtime.NumGoroutine()))
			}
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.heapAlloc.Store(ms.HeapAlloc)
	c.heapInuse.Store(ms.HeapInuse)
	c.heapIdle.Store(ms.HeapIdle)
	c.heapObjects.Store(ms.HeapObjects)
	c.stackInuse.Store(ms.StackInuse)
	c.sysBytes.Store(ms.Sys)
	c.nextGC.Store(ms.NextGC)
	c.mallocs.Store(ms.Mallocs)
	c.frees.Store(ms.Frees)
	c.gcCPUFraction.Store(math.Float64bits(ms.GCCPUFraction))

	n, _ := runtime.ThreadCreateProfile(nil)
	c.threads.Store(int64(n))

	c.samplesTaken.Add(1)
	c.lastSampleUnixNano.Store(time.Now().UnixNano())
}

// bridgeFloat64Histogram feeds the growth of a runtime/metrics histogram
// since the previous sample into dst. Bucket i of src spans
// (Buckets[i], Buckets[i+1]]; its increment is observed at the span's
// upper bound (or lower, when the upper is +Inf) so every event lands in a
// dst bucket at least as large as its true value — conservative for
// latency alerting.
func bridgeFloat64Histogram(dst *Histogram, src *metrics.Float64Histogram, prev *[]uint64) {
	if src == nil || len(src.Counts)+1 != len(src.Buckets) {
		return
	}
	if len(*prev) != len(src.Counts) {
		// First sample, or the runtime changed its bucket layout: reset the
		// baseline. The first bridge then reports events since process start.
		*prev = make([]uint64, len(src.Counts))
	}
	for i, cnt := range src.Counts {
		d := cnt - (*prev)[i]
		if d == 0 || cnt < (*prev)[i] {
			continue
		}
		v := src.Buckets[i+1]
		if math.IsInf(v, +1) {
			v = src.Buckets[i]
		}
		if math.IsInf(v, -1) || math.IsNaN(v) {
			continue
		}
		dst.ObserveN(v, int64(d))
		(*prev)[i] = cnt
	}
}
