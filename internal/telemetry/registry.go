package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates family types for rendering.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
	counterFuncKind
	gaugeFuncKind
	counterSamplesKind
	gaugeSamplesKind
)

func (k metricKind) promType() string {
	switch k {
	case counterKind, counterFuncKind, counterSamplesKind:
		return "counter"
	case gaugeKind, gaugeFuncKind, gaugeSamplesKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is a named metric with a fixed label set.
type family struct {
	name      string
	help      string
	kind      metricKind
	labels    []string
	bounds    []float64       // histogram families
	fn        func() float64  // *Func families
	samplesFn func() []Sample // *Samples families

	mu     sync.Mutex
	series map[string]*series
	order  []*series // insertion order, for stable rendering
}

// getSeries returns (creating if needed) the series for the given label
// values. Callers resolve series once at construction time; this path
// takes the family mutex and must stay off per-element loops.
func (f *family) getSeries(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case counterKind:
		s.counter = &Counter{}
	case gaugeKind:
		s.gauge = &Gauge{}
	case histogramKind:
		s.hist = newHistogram(f.bounds)
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Families are registered once at construction time
// (duplicate or malformed names panic — they are programming errors, not
// runtime conditions); mutating the registered metrics is lock-free.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bounds: bounds, fn: fn,
		series: map[string]*series{},
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterKind, nil, nil, nil).getSeries(nil).counter
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeKind, nil, nil, nil).getSeries(nil).gauge
}

// Histogram registers and returns an unlabeled histogram with the given
// upper bucket bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, histogramKind, nil, bounds, nil).getSeries(nil).hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomic
// counters (e.g. the registry cache) and only need exposition.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, counterFuncKind, nil, nil, fn)
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, gaugeFuncKind, nil, nil, fn)
}

// Sample is one labeled sample produced by a *Samples family at scrape
// time. Labels must match the family's label names positionally.
type Sample struct {
	Labels []string
	Value  float64
}

// CounterSamples registers a labeled counter family whose full sample set
// is produced by fn at every scrape. Unlike CounterVec, no series are ever
// materialized in the registry — the callback owns the label space — which
// is the exposition path for subsystems that bound their own cardinality
// (the hot-pair top-K guard evicts and re-admits label values, something a
// grow-only series map cannot express).
func (r *Registry) CounterSamples(name, help string, labels []string, fn func() []Sample) {
	if len(labels) == 0 {
		panic("telemetry: CounterSamples needs at least one label")
	}
	r.register(name, help, counterSamplesKind, labels, nil, nil).samplesFn = fn
}

// GaugeSamples registers a labeled gauge family rendered from fn at scrape
// time; see CounterSamples.
func (r *Registry) GaugeSamples(name, help string, labels []string, fn func() []Sample) {
	if len(labels) == 0 {
		panic("telemetry: GaugeSamples needs at least one label")
	}
	r.register(name, help, gaugeSamplesKind, labels, nil, nil).samplesFn = fn
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("telemetry: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(name, help, counterKind, labels, nil, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve once and hold the result; With takes a mutex.
func (v *CounterVec) With(values ...string) *Counter { return v.f.getSeries(values).counter }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("telemetry: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.register(name, help, gaugeKind, labels, nil, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.getSeries(values).gauge }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family; every series shares
// the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("telemetry: HistogramVec needs at least one label")
	}
	return &HistogramVec{f: r.register(name, help, histogramKind, labels, bounds, nil)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.getSeries(values).hist }

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelString renders {k="v",...} for the given names and values; extra
// appends one more pair (histograms' le). Empty label sets render as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4): HELP and TYPE comments followed by the samples,
// histograms with cumulative le buckets plus _sum and _count. Series
// within a family are rendered sorted by label values so scrapes are
// deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.promType())
		switch f.kind {
		case counterFuncKind, gaugeFuncKind:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
			continue
		case counterSamplesKind, gaugeSamplesKind:
			samples := f.samplesFn()
			sort.Slice(samples, func(i, j int) bool {
				return strings.Join(samples[i].Labels, "\x00") < strings.Join(samples[j].Labels, "\x00")
			})
			for _, smp := range samples {
				if len(smp.Labels) != len(f.labels) {
					continue // a malformed callback must not corrupt the scrape
				}
				ls := labelString(f.labels, smp.Labels, "", "")
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatFloat(smp.Value))
			}
			continue
		}
		f.mu.Lock()
		ser := append([]*series(nil), f.order...)
		f.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool {
			return strings.Join(ser[i].labelValues, "\x00") < strings.Join(ser[j].labelValues, "\x00")
		})
		for _, s := range ser {
			ls := labelString(f.labels, s.labelValues, "", "")
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.counter.Value())
			case gaugeKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.gauge.Value())
			case histogramKind:
				cum := int64(0)
				for i, bound := range s.hist.bounds {
					cum += s.hist.buckets[i].Load()
					le := labelString(f.labels, s.labelValues, "le", formatFloat(bound))
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, cum)
				}
				cum += s.hist.buckets[len(s.hist.bounds)].Load()
				le := labelString(f.labels, s.labelValues, "le", "+Inf")
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatFloat(s.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, s.hist.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
