package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the exposition golden file")

// buildExerciseRegistry populates one of every family kind with fixed
// values, including label escaping and a labeled histogram.
func buildExerciseRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("cast_subtrees_skipped_total", "Subtrees skipped because (τ, τ') ∈ R_sub.")
	c.Add(42)
	g := reg.Gauge("http_in_flight_requests", "Requests currently being served.")
	g.Set(3)
	v := reg.CounterVec("http_requests_total", "Requests by route and status code.", "route", "code")
	v.With("cast", "200").Add(7)
	v.With("cast", "404").Add(1)
	v.With("he\"llo\nwor\\ld", "200").Inc() // exercises label escaping
	h := reg.Histogram("registry_compile_seconds", "Schema-pair compile latency.", []float64{0.01, 0.1, 1})
	for _, o := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(o)
	}
	hv := reg.HistogramVec("http_request_duration_seconds", "Request latency by route.", []float64{0.25}, "route")
	hv.With("cast").Observe(0.125)
	hv.With("cast").Observe(0.5)
	reg.CounterFunc("registry_hits_total", "Pair-cache hits.", func() float64 { return 9 })
	reg.GaugeFunc("registry_pairs", "Cached compiled pairs.", func() float64 { return 2 })
	return reg
}

// TestPrometheusGolden locks the exposition byte-for-byte against
// testdata/exposition.golden (regenerate with `go test -run Golden -update`).
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildExerciseRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Fatalf("exposition drifted from golden file.\n-- got --\n%s\n-- want --\n%s", b.String(), want)
	}
}

// TestPrometheusWellFormed runs the promtool-style shape check the CI
// smoke job applies to the live daemon: every non-comment line must be
// `name{labels} value`.
func TestPrometheusWellFormed(t *testing.T) {
	var b strings.Builder
	if err := buildExerciseRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9eE+-]+)?|\+Inf|NaN)$`)
	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*`)
	seenSample := false
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !comment.MatchString(line) {
				t.Fatalf("malformed comment line: %q", line)
			}
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		seenSample = true
	}
	if !seenSample {
		t.Fatal("no samples rendered")
	}
	// Histogram invariants: buckets cumulative and capped by _count.
	out := b.String()
	if !strings.Contains(out, `registry_compile_seconds_bucket{le="+Inf"} 4`) {
		t.Fatalf("+Inf bucket must equal total count:\n%s", out)
	}
	if !strings.Contains(out, "registry_compile_seconds_count 4") {
		t.Fatalf("missing histogram count:\n%s", out)
	}
	if !strings.Contains(out, `http_request_duration_seconds_bucket{route="cast",le="+Inf"} 2`) {
		t.Fatalf("labeled histogram le must come last:\n%s", out)
	}
}
