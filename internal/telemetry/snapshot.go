package telemetry

import (
	"sort"
	"strings"
)

// Snapshotting is the machine-readable sibling of the text exposition:
// where WritePrometheus renders for a scraper, Gather renders for a
// program — the /metrics.json endpoint, the OTLP metric exporter, and the
// /debug/fleet cross-peer merge all consume the same FamilySnapshot slice,
// so the three views can never disagree about what a family contains.

// BucketSnapshot is one histogram bucket. Counts are per-bucket
// (non-cumulative) so merging across peers is a plain element-wise sum;
// LE is a string because JSON has no encoding for +Inf.
type BucketSnapshot struct {
	LE       string    `json:"le"`
	Count    int64     `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// SampleSnapshot is one labeled series of a family. Counters and gauges
// carry Value; histograms carry Count/Sum/Buckets instead.
type SampleSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   int64             `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// FamilySnapshot is one metric family at a point in time. Type is the
// Prometheus type string ("counter", "gauge", "histogram").
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help"`
	Type    string           `json:"type"`
	Samples []SampleSnapshot `json:"samples"`
}

// Gather snapshots every registered family, including the scrape-time
// *Func and *Samples families (callback-backed families used to be
// invisible to JSON consumers — the hot-pair attribution bug this fixes).
// Series are sorted by label values for deterministic output.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind.promType()}
		switch f.kind {
		case counterFuncKind, gaugeFuncKind:
			fs.Samples = append(fs.Samples, SampleSnapshot{Value: f.fn()})
		case counterSamplesKind, gaugeSamplesKind:
			samples := f.samplesFn()
			sort.Slice(samples, func(i, j int) bool {
				return strings.Join(samples[i].Labels, "\x00") < strings.Join(samples[j].Labels, "\x00")
			})
			for _, smp := range samples {
				if len(smp.Labels) != len(f.labels) {
					continue
				}
				fs.Samples = append(fs.Samples, SampleSnapshot{
					Labels: labelMap(f.labels, smp.Labels),
					Value:  smp.Value,
				})
			}
		default:
			f.mu.Lock()
			ser := append([]*series(nil), f.order...)
			f.mu.Unlock()
			sort.Slice(ser, func(i, j int) bool {
				return strings.Join(ser[i].labelValues, "\x00") < strings.Join(ser[j].labelValues, "\x00")
			})
			for _, s := range ser {
				ss := SampleSnapshot{Labels: labelMap(f.labels, s.labelValues)}
				switch f.kind {
				case counterKind:
					ss.Value = float64(s.counter.Value())
				case gaugeKind:
					ss.Value = float64(s.gauge.Value())
				case histogramKind:
					ss.Count = s.hist.Count()
					ss.Sum = s.hist.Sum()
					ss.Buckets = make([]BucketSnapshot, 0, len(s.hist.buckets))
					for i := range s.hist.buckets {
						le := "+Inf"
						if i < len(s.hist.bounds) {
							le = formatFloat(s.hist.bounds[i])
						}
						ss.Buckets = append(ss.Buckets, BucketSnapshot{
							LE:       le,
							Count:    s.hist.buckets[i].Load(),
							Exemplar: s.hist.BucketExemplar(i),
						})
					}
				}
				fs.Samples = append(fs.Samples, ss)
			}
		}
		out = append(out, fs)
	}
	return out
}

func labelMap(names, values []string) map[string]string {
	if len(names) == 0 {
		return nil
	}
	m := make(map[string]string, len(names))
	for i, n := range names {
		m[n] = values[i]
	}
	return m
}

// seriesKey canonicalizes a label map for merge matching.
func seriesKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\x00')
		b.WriteString(labels[k])
		b.WriteByte('\x00')
	}
	return b.String()
}

// MergeFamilies folds the families of many peers into one cluster view:
// counters and gauges sum per label set, histograms sum count/sum and —
// when the bucket layouts agree — per-bucket counts, keeping the freshest
// exemplar per bucket. Peers running different builds may disagree on
// bucket bounds; those histograms degrade to count/sum only rather than
// fabricating a bucket layout no peer has. Family identity is the metric
// name; the first peer to present a family fixes its help/type.
func MergeFamilies(peers ...[]FamilySnapshot) []FamilySnapshot {
	type famAcc struct {
		fam   *FamilySnapshot
		index map[string]int // seriesKey -> index into fam.Samples
	}
	var order []string
	acc := map[string]*famAcc{}

	for _, fams := range peers {
		for _, f := range fams {
			a, ok := acc[f.Name]
			if !ok {
				a = &famAcc{
					fam:   &FamilySnapshot{Name: f.Name, Help: f.Help, Type: f.Type},
					index: map[string]int{},
				}
				acc[f.Name] = a
				order = append(order, f.Name)
			}
			for _, s := range f.Samples {
				key := seriesKey(s.Labels)
				idx, seen := a.index[key]
				if !seen {
					a.index[key] = len(a.fam.Samples)
					a.fam.Samples = append(a.fam.Samples, copySample(s))
					continue
				}
				dst := &a.fam.Samples[idx]
				dst.Value += s.Value
				dst.Count += s.Count
				dst.Sum += s.Sum
				mergeBuckets(dst, s.Buckets)
			}
		}
	}

	out := make([]FamilySnapshot, 0, len(order))
	for _, name := range order {
		fam := acc[name].fam
		sort.Slice(fam.Samples, func(i, j int) bool {
			return seriesKey(fam.Samples[i].Labels) < seriesKey(fam.Samples[j].Labels)
		})
		out = append(out, *fam)
	}
	return out
}

func copySample(s SampleSnapshot) SampleSnapshot {
	out := s
	if s.Labels != nil {
		out.Labels = make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			out.Labels[k] = v
		}
	}
	if s.Buckets != nil {
		out.Buckets = append([]BucketSnapshot(nil), s.Buckets...)
	}
	return out
}

// mergeBuckets adds src's bucket counts into dst when the LE layouts
// match; on any mismatch dst's buckets are discarded so the merged series
// honestly reports only count/sum.
func mergeBuckets(dst *SampleSnapshot, src []BucketSnapshot) {
	if len(dst.Buckets) == 0 && len(src) == 0 {
		return
	}
	if len(dst.Buckets) != len(src) {
		dst.Buckets = nil
		return
	}
	for i := range src {
		if dst.Buckets[i].LE != src[i].LE {
			dst.Buckets = nil
			return
		}
	}
	for i := range src {
		dst.Buckets[i].Count += src[i].Count
		if e := src[i].Exemplar; e != nil {
			cur := dst.Buckets[i].Exemplar
			if cur == nil || e.Time.After(cur.Time) {
				dst.Buckets[i].Exemplar = e
			}
		}
	}
}
