package telemetry

// The decision trace is the explanatory half of the telemetry layer: where
// the metric families aggregate *how much* work the cast engines avoided,
// a Trace records *which* decisions avoided it — one event per skip,
// reject or descend, tagged with the node's path, its Dewey number and the
// (τ, τ') type pair involved — so any verdict can be replayed and
// explained (xmlcast -explain, castd ?explain=1).

// Action classifies one decision taken during a cast validation.
type Action string

const (
	// ActionDescend marks a subtree whose (τ, τ') pair is neither
	// subsumed nor disjoint: the engine must look inside.
	ActionDescend Action = "descend"
	// ActionSkip marks a subtree skipped outright because (τ, τ') ∈ R_sub:
	// everything below is target-valid by the source-validity contract.
	ActionSkip Action = "skip"
	// ActionReject marks an immediate rejection because (τ, τ') ∈ R_dis:
	// no source-valid subtree can satisfy the target type.
	ActionReject Action = "reject"
	// ActionContent reports a content-model (children label string) check,
	// including where the immediate decision automaton settled it.
	ActionContent Action = "content"
	// ActionSimple reports a simple-type value check against the target
	// type's facets.
	ActionSimple Action = "simple"
	// ActionFull marks a subtree handed to the full target-schema
	// validator (inserted content, or a simple source type that carries no
	// knowledge about element children).
	ActionFull Action = "full"
)

// Event is one recorded decision. Path is the XPath-like location
// ("/po/items/item[2]"), Dewey the Dewey decimal number ("0.2.1"; "ε" for
// the root), Depth the element depth (root = 0). SrcType/DstType name the
// (τ, τ') pair the decision was made for; Detail is a human-readable
// elaboration (e.g. where an IDA immediately accepted).
type Event struct {
	Action  Action `json:"action"`
	Path    string `json:"path"`
	Dewey   string `json:"dewey"`
	Depth   int    `json:"depth"`
	SrcType string `json:"srcType,omitempty"`
	DstType string `json:"dstType,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Trace accumulates the decisions of one validation, in document order.
// A Trace is single-validation, single-goroutine state — like a Stats
// struct, not like a metric — and costs nothing when nil: engines only
// build events when a trace was requested.
type Trace struct {
	events []Event
}

// Record appends one event. Safe on a nil receiver (no-op), so callers
// holding an optional trace can record unconditionally off the hot path.
func (t *Trace) Record(e Event) {
	if t == nil {
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events in order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Count returns how many events carry the given action — the bridge for
// asserting a trace agrees with a Stats struct (skips, rejects).
func (t *Trace) Count(a Action) int {
	n := 0
	for _, e := range t.Events() {
		if e.Action == a {
			n++
		}
	}
	return n
}
