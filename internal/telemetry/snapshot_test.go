package telemetry

import (
	"testing"
	"time"
)

// TestGatherIncludesCallbackFamilies is the /metrics.json regression: the
// scrape-time *Func and *Samples families (hot-pair attribution) must
// appear in the snapshot, not only in the text exposition.
func TestGatherIncludesCallbackFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total", "plain").Add(5)
	reg.CounterFunc("func_total", "func-backed", func() float64 { return 7 })
	reg.CounterSamples("cast_pair_casts_total", "per-pair casts", []string{"pair"}, func() []Sample {
		return []Sample{{Labels: []string{"b:a"}, Value: 3}, {Labels: []string{"a:b"}, Value: 11}}
	})
	reg.GaugeSamples("cast_pair_resident", "residency", []string{"pair"}, func() []Sample {
		return []Sample{{Labels: []string{"a:b"}, Value: 1}}
	})

	fams := map[string]FamilySnapshot{}
	for _, f := range reg.Gather() {
		fams[f.Name] = f
	}
	if f, ok := fams["func_total"]; !ok || len(f.Samples) != 1 || f.Samples[0].Value != 7 {
		t.Fatalf("CounterFunc family missing or wrong: %+v", fams["func_total"])
	}
	f, ok := fams["cast_pair_casts_total"]
	if !ok || f.Type != "counter" {
		t.Fatalf("CounterSamples family missing: %+v", f)
	}
	if len(f.Samples) != 2 || f.Samples[0].Labels["pair"] != "a:b" || f.Samples[0].Value != 11 {
		t.Fatalf("CounterSamples samples wrong (want sorted by label): %+v", f.Samples)
	}
	if g, ok := fams["cast_pair_resident"]; !ok || g.Type != "gauge" || len(g.Samples) != 1 {
		t.Fatalf("GaugeSamples family missing: %+v", g)
	}
}

func TestGatherHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	at := time.Unix(1700000000, 0)
	h.ObserveExemplar(0.05, "aa11", "bb22", at)
	h.Observe(5)

	fams := reg.Gather()
	if len(fams) != 1 {
		t.Fatalf("want 1 family, got %d", len(fams))
	}
	s := fams[0].Samples[0]
	if s.Count != 2 || s.Sum != 5.05 {
		t.Fatalf("count/sum wrong: %+v", s)
	}
	wantLE := []string{"0.1", "1", "+Inf"}
	wantCount := []int64{1, 0, 1} // non-cumulative
	for i, b := range s.Buckets {
		if b.LE != wantLE[i] || b.Count != wantCount[i] {
			t.Fatalf("bucket %d = %+v, want le=%s count=%d", i, b, wantLE[i], wantCount[i])
		}
	}
	if e := s.Buckets[0].Exemplar; e == nil || e.TraceID != "aa11" || e.Value != 0.05 {
		t.Fatalf("bucket 0 exemplar wrong: %+v", s.Buckets[0].Exemplar)
	}
	if s.Buckets[2].Exemplar != nil {
		t.Fatalf("+Inf bucket should have no exemplar: %+v", s.Buckets[2].Exemplar)
	}
}

func TestMergeFamilies(t *testing.T) {
	older := time.Unix(1700000000, 0)
	newer := older.Add(time.Minute)
	peerA := []FamilySnapshot{
		{Name: "casts_total", Help: "casts", Type: "counter", Samples: []SampleSnapshot{
			{Labels: map[string]string{"route": "cast"}, Value: 10},
		}},
		{Name: "lat_seconds", Type: "histogram", Samples: []SampleSnapshot{
			{Count: 3, Sum: 0.5, Buckets: []BucketSnapshot{
				{LE: "0.1", Count: 2, Exemplar: &Exemplar{TraceID: "old", Time: older}},
				{LE: "+Inf", Count: 1},
			}},
		}},
		{Name: "only_a_total", Type: "counter", Samples: []SampleSnapshot{{Value: 1}}},
	}
	peerB := []FamilySnapshot{
		{Name: "casts_total", Help: "casts", Type: "counter", Samples: []SampleSnapshot{
			{Labels: map[string]string{"route": "cast"}, Value: 4},
			{Labels: map[string]string{"route": "batch"}, Value: 2},
		}},
		{Name: "lat_seconds", Type: "histogram", Samples: []SampleSnapshot{
			{Count: 5, Sum: 1.5, Buckets: []BucketSnapshot{
				{LE: "0.1", Count: 4, Exemplar: &Exemplar{TraceID: "new", Time: newer}},
				{LE: "+Inf", Count: 1},
			}},
		}},
	}

	merged := map[string]FamilySnapshot{}
	for _, f := range MergeFamilies(peerA, peerB) {
		merged[f.Name] = f
	}

	casts := merged["casts_total"]
	if len(casts.Samples) != 2 {
		t.Fatalf("want 2 cast series, got %+v", casts.Samples)
	}
	for _, s := range casts.Samples {
		switch s.Labels["route"] {
		case "cast":
			if s.Value != 14 {
				t.Fatalf("cast counter should sum to 14: %+v", s)
			}
		case "batch":
			if s.Value != 2 {
				t.Fatalf("batch counter should stay 2: %+v", s)
			}
		}
	}

	lat := merged["lat_seconds"].Samples[0]
	if lat.Count != 8 || lat.Sum != 2.0 {
		t.Fatalf("histogram count/sum wrong: %+v", lat)
	}
	if lat.Buckets[0].Count != 6 || lat.Buckets[1].Count != 2 {
		t.Fatalf("bucket counts should sum element-wise: %+v", lat.Buckets)
	}
	if lat.Buckets[0].Exemplar.TraceID != "new" {
		t.Fatalf("freshest exemplar should win: %+v", lat.Buckets[0].Exemplar)
	}
	if merged["only_a_total"].Samples[0].Value != 1 {
		t.Fatal("family present on one peer only must survive the merge")
	}

	// Source snapshots must not be mutated by the merge.
	if peerA[0].Samples[0].Value != 10 || peerA[1].Samples[0].Buckets[0].Count != 2 {
		t.Fatalf("merge mutated its input: %+v", peerA)
	}
}

func TestMergeFamiliesBucketMismatch(t *testing.T) {
	a := []FamilySnapshot{{Name: "h", Type: "histogram", Samples: []SampleSnapshot{
		{Count: 1, Sum: 0.1, Buckets: []BucketSnapshot{{LE: "0.1", Count: 1}, {LE: "+Inf"}}},
	}}}
	b := []FamilySnapshot{{Name: "h", Type: "histogram", Samples: []SampleSnapshot{
		{Count: 2, Sum: 0.4, Buckets: []BucketSnapshot{{LE: "0.5", Count: 2}, {LE: "+Inf"}}},
	}}}
	m := MergeFamilies(a, b)
	s := m[0].Samples[0]
	if s.Count != 3 || s.Sum != 0.5 {
		t.Fatalf("count/sum must still merge: %+v", s)
	}
	if s.Buckets != nil {
		t.Fatalf("mismatched bucket layouts must drop buckets, got %+v", s.Buckets)
	}
}
