package update

import (
	"testing"

	"repro/internal/xmltree"
)

func TestTrieBasics(t *testing.T) {
	trie := &Trie{}
	if trie.Modified() {
		t.Fatal("empty trie is unmodified")
	}
	trie.Insert([]int{1, 0, 2})
	trie.Insert([]int{1, 3})
	if !trie.Modified() {
		t.Fatal("trie with entries is modified")
	}
	if trie.Size() != 2 {
		t.Fatalf("Size = %d, want 2", trie.Size())
	}
	// Navigation mirrors Dewey descent.
	sub := trie.Child(1)
	if !sub.Modified() {
		t.Fatal("child 1 leads to modifications")
	}
	if trie.Child(0).Modified() {
		t.Fatal("child 0 has no modifications")
	}
	if sub.Child(0).Child(2) == nil || !sub.Child(0).Child(2).Modified() {
		t.Fatal("path 1/0/2 should be terminal")
	}
	if sub.Child(9).Modified() {
		t.Fatal("unknown branch is unmodified")
	}
	// Nil-safety of deep descent.
	var nilTrie *Trie
	if nilTrie.Modified() || nilTrie.Child(3).Child(4).Modified() {
		t.Fatal("nil trie must be inert")
	}
	if nilTrie.Size() != 0 {
		t.Fatal("nil trie has size 0")
	}
}

func TestTrieRootInsert(t *testing.T) {
	trie := &Trie{}
	trie.Insert(nil) // the root itself was modified
	if !trie.Modified() || trie.Size() != 1 {
		t.Fatal("root modification not recorded")
	}
}

func doc() *xmltree.Node {
	return xmltree.MustParseString(
		`<po><shipTo>a</shipTo><billTo>b</billTo><items><item>x</item><item>y</item></items></po>`)
}

func TestRelabel(t *testing.T) {
	d := doc()
	tk := NewTracker(d)
	ship := d.Children[0]
	if err := tk.Relabel(ship, "deliverTo"); err != nil {
		t.Fatal(err)
	}
	if ship.Label != "deliverTo" || ship.Delta != xmltree.DeltaRelabel || ship.OldLabel != "shipTo" {
		t.Fatalf("relabel encoding wrong: %+v", ship)
	}
	// Second relabel keeps the ORIGINAL old label.
	if err := tk.Relabel(ship, "sendTo"); err != nil {
		t.Fatal(err)
	}
	if ship.OldLabel != "shipTo" || ship.Label != "sendTo" {
		t.Fatalf("chained relabel wrong: %+v", ship)
	}
	// Relabel back to the original clears the delta but stays touched.
	if err := tk.Relabel(ship, "shipTo"); err != nil {
		t.Fatal(err)
	}
	if ship.Delta != xmltree.DeltaNone || ship.OldLabel != "" {
		t.Fatalf("relabel-back should clear delta: %+v", ship)
	}
	trie := tk.Finalize()
	if !trie.Child(0).Modified() {
		t.Fatal("trie must still record the touched node")
	}
	if tk.Edits() != 3 {
		t.Fatalf("Edits = %d", tk.Edits())
	}
}

func TestRelabelErrors(t *testing.T) {
	d := doc()
	tk := NewTracker(d)
	text := d.Children[0].Children[0]
	if err := tk.Relabel(text, "x"); err == nil {
		t.Fatal("relabel of a text node must fail")
	}
	ship := d.Children[0]
	if err := tk.Delete(ship); err != nil {
		t.Fatal(err)
	}
	if err := tk.Relabel(ship, "x"); err == nil {
		t.Fatal("relabel of a deleted node must fail")
	}
}

func TestSetText(t *testing.T) {
	d := doc()
	tk := NewTracker(d)
	text := d.Children[0].Children[0]
	if err := tk.SetText(text, "zzz"); err != nil {
		t.Fatal(err)
	}
	if text.Text != "zzz" || text.Delta != xmltree.DeltaRelabel {
		t.Fatalf("SetText encoding wrong: %+v", text)
	}
	if err := tk.SetText(d.Children[0], "x"); err == nil {
		t.Fatal("SetText on an element must fail")
	}
}

func TestInsertVariants(t *testing.T) {
	d := doc()
	tk := NewTracker(d)
	bill := d.Children[1]
	n1 := xmltree.NewElement("note1")
	if err := tk.InsertBefore(bill, n1); err != nil {
		t.Fatal(err)
	}
	n2 := xmltree.NewElement("note2")
	if err := tk.InsertAfter(bill, n2); err != nil {
		t.Fatal(err)
	}
	n3 := xmltree.NewElement("note3")
	if err := tk.InsertFirstChild(d, n3); err != nil {
		t.Fatal(err)
	}
	n4 := xmltree.NewElement("note4")
	if err := tk.AppendChild(d, n4); err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(d.Children))
	for i, c := range d.Children {
		labels[i] = c.Label
	}
	want := []string{"note3", "shipTo", "note1", "billTo", "note2", "items", "note4"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("children = %v, want %v", labels, want)
		}
	}
	for _, n := range []*xmltree.Node{n1, n2, n3, n4} {
		if n.Delta != xmltree.DeltaInsert {
			t.Fatalf("inserted node not marked: %+v", n)
		}
	}
	trie := tk.Finalize()
	if trie.Size() != 4 {
		t.Fatalf("trie size = %d, want 4", trie.Size())
	}
}

func TestInsertErrors(t *testing.T) {
	d := doc()
	tk := NewTracker(d)
	if err := tk.InsertBefore(d, xmltree.NewElement("x")); err == nil {
		t.Fatal("inserting a sibling of the root must fail")
	}
	text := d.Children[0].Children[0]
	if err := tk.InsertFirstChild(text, xmltree.NewElement("x")); err == nil {
		t.Fatal("inserting under a text node must fail")
	}
	attached := d.Children[0]
	if err := tk.AppendChild(d, attached); err == nil {
		t.Fatal("inserting an attached node must fail")
	}
}

func TestDeleteTombstones(t *testing.T) {
	d := doc()
	tk := NewTracker(d)
	bill := d.Children[1]
	if err := tk.Delete(bill); err != nil {
		t.Fatal(err)
	}
	if bill.Delta != xmltree.DeltaDelete {
		t.Fatal("delete should tombstone")
	}
	if len(d.Children) != 3 {
		t.Fatal("tombstone must stay in place")
	}
	if err := tk.Delete(bill); err == nil {
		t.Fatal("double delete must fail")
	}
	if err := tk.Delete(d); err == nil {
		t.Fatal("deleting the root must fail")
	}
}

func TestDeleteInsertedNodeIsPhysical(t *testing.T) {
	d := doc()
	tk := NewTracker(d)
	n := xmltree.NewElement("tmp")
	if err := tk.AppendChild(d, n); err != nil {
		t.Fatal(err)
	}
	if err := tk.Delete(n); err != nil {
		t.Fatal(err)
	}
	if len(d.Children) != 3 {
		t.Fatal("insert+delete should leave no trace in the children")
	}
	// The parent stays recorded so content models get rechecked.
	trie := tk.Finalize()
	if !trie.Modified() {
		t.Fatal("parent must remain touched")
	}
}

func TestFinalizePaths(t *testing.T) {
	d := doc()
	tk := NewTracker(d)
	item2 := d.Children[2].Children[1]
	if err := tk.Relabel(item2, "itemX"); err != nil {
		t.Fatal(err)
	}
	trie := tk.Finalize()
	// item2 is at path [2,1]; the trie must say modified along that path
	// and unmodified along others.
	if !trie.Child(2).Modified() || !trie.Child(2).Child(1).Modified() {
		t.Fatal("path 2/1 should be modified")
	}
	if trie.Child(0).Modified() || trie.Child(2).Child(0).Modified() {
		t.Fatal("untouched paths must be unmodified")
	}
}
