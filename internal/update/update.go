// Package update implements the edit machinery of EDBT'04 §3.3: applying
// relabelings, insertions and deletions to an ordered labeled tree with
// Δ-label encoding (Δ^a_b, Δ^ε_b, Δ^a_ε), and the Dewey-number trie that
// answers modified(subtree) queries in O(depth) while using memory
// proportional to the number of edits, not the document size.
package update

import (
	"fmt"

	"repro/internal/xmltree"
)

// Trie is a trie over Dewey decimal numbers (paths of child indexes). The
// revalidation traversal navigates the trie in parallel with the tree: the
// subtree at the current node is unmodified exactly when the corresponding
// trie subtree is empty (nil).
type Trie struct {
	children map[int]*Trie
	terminal bool // a modification was recorded exactly here
}

// Insert records the path of a modified node.
func (t *Trie) Insert(path []int) {
	cur := t
	for _, idx := range path {
		if cur.children == nil {
			cur.children = make(map[int]*Trie)
		}
		next, ok := cur.children[idx]
		if !ok {
			next = &Trie{}
			cur.children[idx] = next
		}
		cur = next
	}
	cur.terminal = true
}

// Child descends one step. It is nil-safe: descending from an empty (nil)
// trie stays nil.
func (t *Trie) Child(idx int) *Trie {
	if t == nil || t.children == nil {
		return nil
	}
	return t.children[idx]
}

// Modified reports whether any modification was recorded at or below this
// trie node — the paper's modified(t”) predicate. A nil trie is
// unmodified.
func (t *Trie) Modified() bool {
	return t != nil && (t.terminal || len(t.children) > 0)
}

// Size returns the number of recorded modification paths.
func (t *Trie) Size() int {
	if t == nil {
		return 0
	}
	n := 0
	if t.terminal {
		n = 1
	}
	for _, c := range t.children {
		n += c.Size()
	}
	return n
}

// Tracker applies edits to a tree, Δ-encoding them in place, and builds the
// modification trie. The paper's update set is relabeling, leaf insertion
// and leaf deletion; the tracker generalizes insertion/deletion to whole
// subtrees (an inserted subtree is Δ^ε_b at its root and is revalidated in
// full; a deleted subtree is tombstoned at its root). Tombstones — rather
// than physical removal — keep every node's Dewey number stable, so paths
// recorded in the trie stay valid across an edit session.
type Tracker struct {
	Root *xmltree.Node
	// touched holds the nodes whose paths enter the trie at Finalize.
	touched []*xmltree.Node
	edits   int
}

// NewTracker starts an edit session on the tree rooted at root. The tree is
// modified in place.
func NewTracker(root *xmltree.Node) *Tracker {
	return &Tracker{Root: root}
}

// Edits returns the number of edits applied so far.
func (tk *Tracker) Edits() int { return tk.edits }

// Relabel changes the element tag of n to newLabel (Δ^a_b).
func (tk *Tracker) Relabel(n *xmltree.Node, newLabel string) error {
	if n.IsText() {
		return fmt.Errorf("update: Relabel on a text node (use SetText)")
	}
	if n.Delta == xmltree.DeltaDelete {
		return fmt.Errorf("update: node %s is deleted", n.Label)
	}
	switch n.Delta {
	case xmltree.DeltaNone:
		n.Delta = xmltree.DeltaRelabel
		n.OldLabel = n.Label
	case xmltree.DeltaRelabel:
		// Keep the original OldLabel; only the final label matters.
		if n.OldLabel == newLabel {
			// Relabeled back to the original: the label is unmodified,
			// but content-model positions may still need rechecking, so
			// the node stays touched.
			n.Delta = xmltree.DeltaNone
			n.OldLabel = ""
		}
	case xmltree.DeltaInsert:
		// An inserted node keeps its insert status under relabeling.
	}
	n.Label = newLabel
	tk.record(n)
	return nil
}

// SetText changes the simple value of a χ leaf (Δ^χ_χ).
func (tk *Tracker) SetText(n *xmltree.Node, value string) error {
	if !n.IsText() {
		return fmt.Errorf("update: SetText on an element node")
	}
	if n.Delta == xmltree.DeltaDelete {
		return fmt.Errorf("update: text node is deleted")
	}
	if n.Delta == xmltree.DeltaNone {
		n.Delta = xmltree.DeltaRelabel
	}
	n.Text = value
	tk.record(n)
	return nil
}

// InsertBefore inserts newNode as the sibling immediately before ref
// (Δ^ε_b).
func (tk *Tracker) InsertBefore(ref, newNode *xmltree.Node) error {
	if ref.Parent == nil {
		return fmt.Errorf("update: cannot insert a sibling of the root")
	}
	return tk.insertAt(ref.Parent, indexOf(ref), newNode)
}

// InsertAfter inserts newNode as the sibling immediately after ref (Δ^ε_b).
func (tk *Tracker) InsertAfter(ref, newNode *xmltree.Node) error {
	if ref.Parent == nil {
		return fmt.Errorf("update: cannot insert a sibling of the root")
	}
	return tk.insertAt(ref.Parent, indexOf(ref)+1, newNode)
}

// InsertFirstChild inserts newNode as the first child of parent (Δ^ε_b).
func (tk *Tracker) InsertFirstChild(parent, newNode *xmltree.Node) error {
	return tk.insertAt(parent, 0, newNode)
}

// AppendChild inserts newNode as the last child of parent (Δ^ε_b).
func (tk *Tracker) AppendChild(parent, newNode *xmltree.Node) error {
	return tk.insertAt(parent, len(parent.Children), newNode)
}

func (tk *Tracker) insertAt(parent *xmltree.Node, idx int, newNode *xmltree.Node) error {
	if parent == nil {
		return fmt.Errorf("update: cannot insert a sibling of the root")
	}
	if parent.IsText() {
		return fmt.Errorf("update: cannot insert under a text node")
	}
	if newNode.Parent != nil {
		return fmt.Errorf("update: node to insert is already attached")
	}
	if idx < 0 || idx > len(parent.Children) {
		return fmt.Errorf("update: insert index %d out of range", idx)
	}
	newNode.Delta = xmltree.DeltaInsert
	parent.InsertChildAt(idx, newNode)
	tk.record(newNode)
	return nil
}

// Delete tombstones the subtree rooted at n (Δ^a_ε). A freshly inserted
// node is removed physically instead (insert+delete is a net no-op), with
// its parent recorded as touched so content models are still rechecked.
func (tk *Tracker) Delete(n *xmltree.Node) error {
	if n.Parent == nil {
		return fmt.Errorf("update: cannot delete the root")
	}
	if n.Delta == xmltree.DeltaDelete {
		return fmt.Errorf("update: node already deleted")
	}
	if n.Delta == xmltree.DeltaInsert {
		parent := n.Parent
		parent.RemoveChildAt(indexOf(n))
		tk.dropTouched(n)
		tk.record(parent)
		return nil
	}
	n.Delta = xmltree.DeltaDelete
	tk.record(n)
	return nil
}

func (tk *Tracker) record(n *xmltree.Node) {
	tk.touched = append(tk.touched, n)
	tk.edits++
}

func (tk *Tracker) dropTouched(n *xmltree.Node) {
	out := tk.touched[:0]
	for _, m := range tk.touched {
		if m != n {
			out = append(out, m)
		}
	}
	tk.touched = out
}

// Finalize builds the modification trie from the Dewey numbers of all
// touched nodes. Call it after the last edit; the tree must not be edited
// afterwards (paths are computed against the final shape). The trie costs
// O(edits × depth) memory, independent of document size.
func (tk *Tracker) Finalize() *Trie {
	trie := &Trie{}
	for _, n := range tk.touched {
		trie.Insert(n.Path())
	}
	return trie
}

func indexOf(n *xmltree.Node) int {
	return n.Parent.ChildIndex(n)
}
