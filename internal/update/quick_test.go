package update

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

// Property: for any set of inserted paths, Modified is true exactly on the
// prefixes of inserted paths.
func TestQuickTriePrefixProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trie := &Trie{}
		nPaths := 1 + rng.Intn(6)
		paths := make([][]int, nPaths)
		for i := range paths {
			depth := rng.Intn(5)
			p := make([]int, depth)
			for j := range p {
				p[j] = rng.Intn(4)
			}
			paths[i] = p
			trie.Insert(p)
		}
		// Every prefix of every inserted path must be Modified.
		for _, p := range paths {
			cur := trie
			if !cur.Modified() {
				return false
			}
			for _, idx := range p {
				cur = cur.Child(idx)
				if !cur.Modified() {
					return false
				}
			}
		}
		// Random probes: Modified must hold only for genuine prefixes.
		for probe := 0; probe < 30; probe++ {
			depth := rng.Intn(6)
			q := make([]int, depth)
			for j := range q {
				q[j] = rng.Intn(5)
			}
			cur := trie
			for _, idx := range q {
				cur = cur.Child(idx)
			}
			want := false
			for _, p := range paths {
				if isPrefix(q, p) {
					want = true
					break
				}
			}
			if cur.Modified() != want {
				t.Logf("probe %v: Modified=%v want=%v (paths %v)", q, cur.Modified(), want, paths)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func isPrefix(q, p []int) bool {
	if len(q) > len(p) {
		return false
	}
	for i := range q {
		if q[i] != p[i] {
			return false
		}
	}
	return true
}

// Property: after any legal edit script, the finalized trie marks exactly
// the paths of the touched nodes — navigating the document tree in parallel
// with the trie finds Modified true on every ancestor-or-self of an edit
// and false on untouched branches.
func TestQuickTrackerTrieMatchesEdits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := buildWideDoc(rng)
		tk := NewTracker(doc)
		touched := map[*xmltree.Node]bool{}
		for e := 0; e < 1+rng.Intn(5); e++ {
			nodes := collect(doc)
			nd := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(3) {
			case 0:
				if nd.IsText() {
					if tk.SetText(nd, "edited") == nil {
						touched[nd] = true
					}
				} else if tk.Relabel(nd, "renamed") == nil {
					touched[nd] = true
				}
			case 1:
				if !nd.IsText() {
					child := xmltree.NewElement("fresh")
					if tk.AppendChild(nd, child) == nil {
						touched[child] = true
					}
				}
			default:
				if nd.Parent != nil && nd.Delta == xmltree.DeltaNone {
					if tk.Delete(nd) == nil {
						touched[nd] = true
					}
				}
			}
		}
		trie := tk.Finalize()
		// Ancestor-or-self of touched nodes ⇒ Modified.
		for n := range touched {
			cur := trie
			for _, idx := range n.Path() {
				if !cur.Modified() {
					return false
				}
				cur = cur.Child(idx)
			}
			if !cur.Modified() {
				return false
			}
		}
		// Nodes with no touched descendant-or-self ⇒ unmodified trie.
		ok := true
		doc.Walk(func(n *xmltree.Node) bool {
			cur := trie
			for _, idx := range n.Path() {
				cur = cur.Child(idx)
			}
			hasTouched := false
			n.Walk(func(d *xmltree.Node) bool {
				if touched[d] {
					hasTouched = true
				}
				return !hasTouched
			})
			if cur.Modified() != hasTouched {
				ok = false
			}
			return ok
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func buildWideDoc(rng *rand.Rand) *xmltree.Node {
	root := xmltree.NewElement("root")
	for i := 0; i < 2+rng.Intn(4); i++ {
		sec := xmltree.NewElement("sec")
		for j := 0; j < rng.Intn(4); j++ {
			leaf := xmltree.NewElement("leaf", xmltree.NewText("v"))
			sec.AppendChild(leaf)
		}
		root.AppendChild(sec)
	}
	return root
}

func collect(doc *xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	doc.Walk(func(n *xmltree.Node) bool {
		out = append(out, n)
		return true
	})
	return out
}
