// Package leakcheck is a test helper that asserts goroutine hygiene: a
// snapshot-and-compare pair wrapped around a test proves that whatever the
// test spawned — HTTP handlers, batch workers, singleflight compiles —
// wound down after drain instead of leaking. It is imported only from
// tests; the daemon never depends on it.
//
// The comparison is tolerant by necessity: the runtime and net/http keep a
// few long-lived service goroutines (idle-connection reapers, the test
// framework itself), so Check polls until the count returns to within a
// small slack of the baseline rather than demanding exact equality, and
// dumps every goroutine stack when it times out so the leak is named, not
// just counted.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// slack is the number of extra goroutines tolerated over the baseline:
// connection-pool keepalives and timer goroutines park asynchronously.
const slack = 3

// Snapshot settles briefly and returns the current goroutine count. Take
// it before the code under test starts anything.
func Snapshot() int {
	// Let goroutines from previous tests park before counting.
	n := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		time.Sleep(5 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// Check fails t unless the goroutine count returns to base+slack within
// five seconds. Call it after every server, pool and request the test
// started has been shut down or drained; on failure it logs a full stack
// dump of every live goroutine.
func Check(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d live after drain (baseline %d, slack %d)\n%s", n, base, slack, buf)
}
