package stream

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/wgen"
)

// diffSeeds is the shared seed corpus of the differential fuzz targets:
// documents chosen to steer the fuzzer into the scanner's grammar corners
// (CDATA, character and entity references, comments and PIs inside
// skimmed subtrees, directives) and into the well-formedness fixes this
// package guards (trailing garbage, stray end tags).
func diffSeeds(f *testing.F) {
	valid := poXML(5, true, 99, 1)
	seeds := []string{
		valid,
		poXML(5, false, 99, 2),
		valid[:len(valid)/2],
		// Grammar corners inside a skimmed subtree.
		strings.Replace(valid, "<shipTo>", "<shipTo><!-- inside a skim -->", 1),
		strings.Replace(valid, "<city>", "<city><![CDATA[ <raw> ]]>", 1),
		strings.Replace(valid, "<street>", "<street>&amp;&#65;&#x42;", 1),
		strings.Replace(valid, "<shipTo>", "<shipTo><?pi data?>", 1),
		// Prolog, doctype, entities, char refs, CDATA at top level.
		`<?xml version="1.0" encoding="UTF-8"?><purchaseOrder/>`,
		`<!DOCTYPE purchaseOrder [<!-- inner -->]><purchaseOrder/>`,
		`<a>&lt;&gt;&apos;&quot;&#xD800;</a>`,
		`<a><![CDATA[]]></a>`,
		`<a><![CDATA[no close`,
		// Well-formedness regressions.
		`<purchaseOrder/>trailing garbage`,
		`</purchaseOrder>`,
		`<purchaseOrder></purchaseOrder></purchaseOrder>`,
		"\uFEFF<purchaseOrder/>",
		"<purchaseOrder/>\uFEFF",
		// Structural hostility.
		strings.Repeat(`<shipTo>`, 200),
		`<a b="&#34;" c='&#39;'/>`,
		"",
		"\xff\xfe\x00<not xml",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
}

// errClass buckets a walker error for differential comparison: the two
// tokenizer paths promise identical verdicts and identical *limit*
// classification, but not identical message text (the scanner words its
// syntax errors differently than encoding/xml).
func errClass(err error) string {
	if err == nil {
		return "accept"
	}
	var le *LimitError
	if errors.As(err, &le) {
		return "limit:" + le.Kind
	}
	return "reject"
}

// FuzzStreamCastDifferential runs every input through the streaming
// caster twice — once on the byte-level scanner, once on the retained
// encoding/xml path — and requires the same verdict, the same limit
// classification on rejects, and identical statistics on accepts. This is
// the executable form of the scanner's compatibility contract.
func FuzzStreamCastDifferential(f *testing.F) {
	ps := wgen.NewPaperSchemas()
	cScan, err := NewCaster(ps.Source1, ps.Target)
	if err != nil {
		f.Fatal(err)
	}
	cStd, err := NewCaster(ps.Source1, ps.Target, WithEncodingXML())
	if err != nil {
		f.Fatal(err)
	}
	diffSeeds(f)
	lim := Limits{MaxDepth: 64, MaxElements: 10_000}
	f.Fuzz(func(t *testing.T, data []byte) {
		stScan, errScan := cScan.ValidateContext(context.Background(), bytes.NewReader(data), lim)
		stStd, errStd := cStd.ValidateContext(context.Background(), bytes.NewReader(data), lim)
		if cs, cd := errClass(errScan), errClass(errStd); cs != cd {
			t.Fatalf("verdict divergence: scanner=%q (%v) encoding/xml=%q (%v) on %q",
				cs, errScan, cd, errStd, data)
		}
		if errScan == nil && stScan != stStd {
			t.Fatalf("stats divergence on accepted input:\nscanner:      %+v\nencoding/xml: %+v\non %q",
				stScan, stStd, data)
		}
	})
}

// FuzzStreamFullDifferential is FuzzStreamCastDifferential for the full
// streaming validator: both tokenizer paths must agree on verdict, limit
// class and accepted-document statistics, with no skimming involved.
func FuzzStreamFullDifferential(f *testing.F) {
	ps := wgen.NewPaperSchemas()
	vScan := NewValidator(ps.Target)
	vStd := NewValidator(ps.Target, WithEncodingXML())
	diffSeeds(f)
	lim := Limits{MaxDepth: 64, MaxElements: 10_000}
	f.Fuzz(func(t *testing.T, data []byte) {
		stScan, errScan := vScan.ValidateContext(context.Background(), bytes.NewReader(data), lim)
		stStd, errStd := vStd.ValidateContext(context.Background(), bytes.NewReader(data), lim)
		if cs, cd := errClass(errScan), errClass(errStd); cs != cd {
			t.Fatalf("verdict divergence: scanner=%q (%v) encoding/xml=%q (%v) on %q",
				cs, errScan, cd, errStd, data)
		}
		if errScan == nil && stScan != stStd {
			t.Fatalf("stats divergence on accepted input:\nscanner:      %+v\nencoding/xml: %+v\non %q",
				stScan, stStd, data)
		}
	})
}

// FuzzStreamFullValidate holds the full streaming validator to the same
// fault-containment contract FuzzStreamValidate holds the caster to: any
// input produces a verdict or an error under the configured limits —
// never a panic, never a hang, never a depth or element overrun.
func FuzzStreamFullValidate(f *testing.F) {
	ps := wgen.NewPaperSchemas()
	v := NewValidator(ps.Target)
	diffSeeds(f)
	const maxDepth, maxElements = 64, 10_000
	lim := Limits{MaxDepth: maxDepth, MaxElements: maxElements}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := v.ValidateContext(context.Background(), bytes.NewReader(data), lim)
		if st.MaxDepth >= maxDepth {
			t.Fatalf("depth limit not enforced: reached %d (limit %d)", st.MaxDepth, maxDepth)
		}
		if st.ElementsVisited > maxElements+1 {
			t.Fatalf("element limit not enforced: consumed %d (limit %d)", st.ElementsVisited, maxElements)
		}
		_ = err
	})
}
