package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/wgen"
)

func paperCaster(t *testing.T) *Caster {
	t.Helper()
	ps := wgen.NewPaperSchemas()
	c, err := NewCaster(ps.Source1, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// endlessPO yields an unbounded purchase-order document: a valid prolog
// followed by item elements forever. The only way a validation of it ends
// is a limit or a cancellation — which is the point.
type endlessPO struct {
	prolog *strings.Reader
	i      int
	buf    []byte
}

func newEndlessPO() *endlessPO {
	return &endlessPO{prolog: strings.NewReader(
		`<purchaseOrder orderDate="2004-03-14"><shipTo country="US"><name>a</name>` +
			`<street>b</street><city>c</city><state>d</state><zip>1</zip></shipTo>` +
			`<billTo country="US"><name>a</name><street>b</street><city>c</city>` +
			`<state>d</state><zip>1</zip></billTo><items>`)}
}

func (e *endlessPO) Read(p []byte) (int, error) {
	if e.prolog.Len() > 0 {
		return e.prolog.Read(p)
	}
	if len(e.buf) == 0 {
		e.i++
		e.buf = []byte(fmt.Sprintf(
			`<item partNum="p%d"><productName>x</productName><quantity>1</quantity>`+
				`<USPrice>1.0</USPrice></item>`, e.i))
	}
	n := copy(p, e.buf)
	e.buf = e.buf[n:]
	return n, nil
}

// TestCancellationStopsEndlessStream is the acceptance check for the
// amortized context polls: a cast over a document that never ends must stop
// within one check interval of the deadline, carrying the context's cause.
func TestCancellationStopsEndlessStream(t *testing.T) {
	c := paperCaster(t)
	cause := errors.New("operator pulled the plug")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)

	st, err := c.ValidateContext(ctx, newEndlessPO(), Limits{})
	if err == nil {
		t.Fatal("canceled cast returned no error")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error does not carry the cancellation cause: %v", err)
	}
	// Pre-canceled context: the walker may consume at most one check
	// interval of elements before noticing.
	if total := st.ElementsVisited + st.ElementsSkimmed; total > cancelCheckEvery {
		t.Fatalf("consumed %d elements after cancellation (check interval %d)", total, cancelCheckEvery)
	}
}

// TestBackgroundContextIsFree proves the hot path exemption: a context that
// can never be canceled must not even arm the countdown, and validation
// results must match the context-free API.
func TestBackgroundContextIsFree(t *testing.T) {
	c := paperCaster(t)
	doc := poXML(50, true, 99, 3)
	want, werr := c.Validate(strings.NewReader(doc))
	got, gerr := c.ValidateContext(context.Background(), strings.NewReader(doc), Limits{})
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("verdicts differ: %v vs %v", werr, gerr)
	}
	if want != got {
		t.Fatalf("stats differ: %+v vs %+v", want, got)
	}
}

func TestMaxElementsLimit(t *testing.T) {
	c := paperCaster(t)
	lim := Limits{MaxElements: 100}
	_, err := c.ValidateContext(context.Background(), newEndlessPO(), lim)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.Kind != "elements" || le.Limit != 100 {
		t.Fatalf("wrong limit fired: %+v", le)
	}
	// A document inside the budget is untouched by the limit.
	if _, err := c.ValidateContext(context.Background(), strings.NewReader(poXML(3, true, 99, 4)), lim); err != nil {
		t.Fatalf("small doc rejected under element limit: %v", err)
	}
}

func TestMaxDepthLimit(t *testing.T) {
	c := paperCaster(t)
	// Nesting inside a skimmed subtree (shipTo is subsumed) exercises the
	// skim branch's depth guard — the walker must enforce depth even on
	// elements it does no validation work for.
	deep := `<purchaseOrder orderDate="2004-03-14"><shipTo country="US">` +
		strings.Repeat("<name>", 40) + strings.Repeat("</name>", 40) +
		`</shipTo></purchaseOrder>`
	_, err := c.ValidateContext(context.Background(), strings.NewReader(deep), Limits{MaxDepth: 8})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.Kind != "depth" || le.Limit != 8 {
		t.Fatalf("wrong limit fired: %+v", le)
	}
	// A generous bound stays invisible.
	if _, err := c.ValidateContext(context.Background(), strings.NewReader(poXML(3, true, 99, 5)), Limits{MaxDepth: 64}); err != nil {
		t.Fatalf("shallow doc rejected under depth limit: %v", err)
	}
}

// TestReaderErrorSurfaces pins down fault containment at the io boundary: a
// reader failing mid-document must produce that error, wrapped, not a hang
// or a panic.
func TestReaderErrorSurfaces(t *testing.T) {
	c := paperCaster(t)
	boom := errors.New("connection reset by chaos")
	r := io.MultiReader(strings.NewReader(`<purchaseOrder orderDate="2004-03-14">`), errReader{boom})
	_, err := c.ValidateContext(context.Background(), r, Limits{})
	if !errors.Is(err, boom) {
		t.Fatalf("reader error lost: %v", err)
	}
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }
