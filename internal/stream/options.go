package stream

// options collects walker construction choices.
type options struct {
	stdXML bool
}

// Option configures a Validator or Caster at construction time.
type Option func(*options)

// WithEncodingXML selects the encoding/xml tokenizer instead of the
// default byte-level scanner (package xmlscan). The two paths accept the
// same documents and produce the same statistics; the encoding/xml path
// is retained as the reference implementation the differential fuzz
// targets compare against, and as an escape hatch should a scanner
// divergence ever surface in production.
func WithEncodingXML() Option {
	return func(o *options) { o.stdXML = true }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
