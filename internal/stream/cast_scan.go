package stream

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/xmlscan"
)

// castScanFrame is the per-open-element state of the scanner-based
// caster; the value-slot pooling story matches sframe.
type castScanFrame struct {
	tS, tD      *schema.Type
	ida         *fa.IDA
	idaState    int
	contentDone bool
	text        []byte
}

// cstate is the pooled per-validation state of the streaming caster.
type cstate struct {
	stack []castScanFrame
}

var cstatePool = sync.Pool{New: func() any { return new(cstate) }}

// validateScan is the scanner-backed body of the streaming cast: same
// verdicts and statistics as validateStd, built on xmlscan events, with
// subsumed subtrees consumed by the scanner's native SkimSubtree instead
// of walking tokens one by one.
func (c *Caster) validateScan(ctx context.Context, r io.Reader, tr *telemetry.Trace, lim Limits) (Stats, error) {
	var st Stats
	sc := xmlscan.Get(r)
	defer sc.Release()
	cs := cstatePool.Get().(*cstate)
	stack := cs.stack[:0]
	defer func() {
		cs.stack = stack
		cstatePool.Put(cs)
	}()
	rootSeen := false
	var tc *traceCtx
	if tr != nil {
		tc = &traceCtx{}
	}
	// done is nil for context.Background(), making every cancellation check
	// a no-op branch; countdown amortizes the channel poll. Skimmed
	// elements draw from the same budget (SkimSubtree pauses when it is
	// spent), so a canceled validation stops within one interval of
	// elements no matter how they were consumed.
	done := ctx.Done()
	countdown := cancelCheckEvery

	for {
		if done != nil {
			countdown--
			if countdown <= 0 {
				countdown = cancelCheckEvery
				select {
				case <-done:
					return st, fmt.Errorf("stream: validation canceled after %d elements: %w",
						st.ElementsVisited+st.ElementsSkimmed, context.Cause(ctx))
				default:
				}
			}
		}
		ev, err := sc.Next()
		if err != nil {
			return st, fmt.Errorf("stream: %w", err)
		}
		switch ev {
		case xmlscan.EventEOF:
			if !rootSeen {
				return st, fmt.Errorf("stream: no root element")
			}
			return st, nil
		case xmlscan.EventStart:
			label := sc.Name()
			childIdx := 0
			if tc != nil && len(tc.childN) > 0 {
				childIdx = tc.childN[len(tc.childN)-1]
				tc.childN[len(tc.childN)-1]++
			}
			var τ, τp schema.TypeID
			if len(stack) == 0 {
				if rootSeen {
					return st, fmt.Errorf("stream: multiple root elements")
				}
				rootSeen = true
				sym := c.Src.Alpha.LookupBytes(label)
				τ = c.Src.RootTypeSym(sym)
				τp = c.Dst.RootTypeSym(sym)
				if τ == schema.NoType {
					return st, fmt.Errorf("stream: cast contract violated: %q is not a source root", label)
				}
				if τp == schema.NoType {
					return st, fmt.Errorf("stream: label %q is not a permitted root of the target schema", label)
				}
			} else {
				parent := &stack[len(stack)-1]
				if parent.tD.Simple {
					return st, fmt.Errorf("stream: element %q under simple target type %q", label, parent.tD.Name)
				}
				sym := c.Src.Alpha.LookupBytes(label)
				if sym == fa.NoSymbol {
					return st, fmt.Errorf("stream: label %q unknown to the schemas", label)
				}
				if parent.contentDone {
					st.SymbolsSkipped++ // model verdict settled; symbol arrives unscanned
				} else {
					st.AutomatonSteps++
					if parent.ida != nil {
						parent.idaState = parent.ida.D.Step(parent.idaState, sym)
						switch parent.ida.Classify(parent.idaState) {
						case fa.ImmediateAccept:
							parent.contentDone = true
						case fa.ImmediateReject:
							return st, fmt.Errorf("stream: child %q not allowed by target content model of %q",
								label, parent.tD.Name)
						}
					} else {
						parent.idaState = parent.tD.DFA.Step(parent.idaState, sym)
						if parent.idaState == fa.Dead {
							return st, fmt.Errorf("stream: child %q not allowed by target content model of %q",
								label, parent.tD.Name)
						}
					}
				}
				τp = schema.NoType
				if t, ok := parent.tD.Child[sym]; ok {
					τp = t
				}
				if τp == schema.NoType {
					return st, fmt.Errorf("stream: label %q has no child type under target %q", label, parent.tD.Name)
				}
				τ = schema.NoType
				if !parent.tS.Simple {
					if t, ok := parent.tS.Child[sym]; ok {
						τ = t
					}
				}
				if τ == schema.NoType {
					return st, fmt.Errorf("stream: cast contract violated: no source child type for %q", label)
				}
			}
			st.ElementsVisited++
			if err := lim.checkDepth(len(stack) + 1); err != nil {
				return st, err
			}
			if err := lim.checkElements(st.ElementsVisited + st.ElementsSkimmed); err != nil {
				return st, err
			}
			st.noteDepth(len(stack))
			if c.Rel.Subsumed(τ, τp) {
				st.SubsumedSkips++
				if tr != nil {
					tr.Record(c.traceEvent(telemetry.ActionSkip, tc, string(label), childIdx, len(stack), τ, τp,
						"subsumed: subtree target-valid, skimming"))
				}
				// Everything below is target-valid: let the scanner skim
				// it natively, pausing whenever the cancellation budget
				// runs out.
				base := sc.Depth()
				for {
					chunk := 0
					if done != nil {
						chunk = countdown
					}
					res, skimErr := sc.SkimSubtree(xmlscan.SkimLimits{
						BaseOpen:         base,
						MaxOpen:          lim.MaxDepth,
						MaxTotalElements: lim.MaxElements,
						BaseElements:     st.ElementsVisited + st.ElementsSkimmed,
						ChunkElements:    chunk,
					})
					st.ElementsSkimmed += res.Elements
					if done != nil {
						// Skimmed elements draw down the same poll budget
						// as walked ones; a ≤0 remainder polls on the next
						// event.
						countdown -= int(res.Elements)
					}
					if res.MaxOpen > 0 {
						st.noteDepth(res.MaxOpen - 1)
					}
					if skimErr != nil {
						switch skimErr {
						case xmlscan.ErrSkimDepth:
							return st, &LimitError{Kind: "depth", Limit: int64(lim.MaxDepth)}
						case xmlscan.ErrSkimElements:
							return st, &LimitError{Kind: "elements", Limit: lim.MaxElements}
						}
						return st, fmt.Errorf("stream: %w", skimErr)
					}
					if res.Done {
						break
					}
					// Paused: the skim consumed the rest of this check
					// interval's budget.
					countdown = cancelCheckEvery
					select {
					case <-done:
						return st, fmt.Errorf("stream: validation canceled after %d elements: %w",
							st.ElementsVisited+st.ElementsSkimmed, context.Cause(ctx))
					default:
					}
				}
				continue
			}
			if c.Rel.Disjoint(τ, τp) {
				st.DisjointRejects++
				if tr != nil {
					tr.Record(c.traceEvent(telemetry.ActionReject, tc, string(label), childIdx, len(stack), τ, τp,
						"disjoint: no source-valid subtree satisfies the target type"))
				}
				return st, fmt.Errorf("stream: source type %q is disjoint from target type %q",
					c.Src.TypeOf(τ).Name, c.Dst.TypeOf(τp).Name)
			}
			stack = pushCastFrame(stack, c, τ, τp)
			f := &stack[len(stack)-1]
			if tr != nil {
				action, detail := telemetry.ActionDescend, "neither subsumed nor disjoint: validating content"
				if f.tD.Simple {
					action, detail = telemetry.ActionSimple, "simple target type: value checked at close"
				}
				tr.Record(c.traceEvent(action, tc, string(label), childIdx, len(stack)-1, τ, τp, detail))
			}
			if tc != nil {
				if len(tc.labels) > 0 {
					tc.dewey = append(tc.dewey, childIdx)
				}
				tc.labels = append(tc.labels, string(label))
				tc.childN = append(tc.childN, 0)
			}
		case xmlscan.EventEnd:
			if len(stack) == 0 {
				// Unreachable through the scanner (it enforces tag
				// matching), but the walker owns its own invariant.
				return st, fmt.Errorf("stream: unexpected end element </%s>", sc.Name())
			}
			f := &stack[len(stack)-1]
			if tc != nil {
				tc.labels = tc.labels[:len(tc.labels)-1]
				tc.childN = tc.childN[:len(tc.childN)-1]
				if len(tc.dewey) > 0 {
					tc.dewey = tc.dewey[:len(tc.dewey)-1]
				}
			}
			err := c.closeScanFrame(f, &st)
			stack = stack[:len(stack)-1]
			if err != nil {
				return st, err
			}
		case xmlscan.EventText:
			text := sc.Text()
			if len(stack) == 0 {
				if len(bytes.TrimSpace(text)) == 0 {
					continue // inter-element whitespace around the root
				}
				return st, fmt.Errorf("stream: text outside the root element")
			}
			f := &stack[len(stack)-1]
			if !f.tD.Simple {
				if len(bytes.TrimSpace(text)) == 0 {
					continue
				}
				return st, fmt.Errorf("stream: text content under element-only target type %q", f.tD.Name)
			}
			f.text = append(f.text, text...)
		}
	}
}

// pushCastFrame appends a frame for the (τ, τp) pair, reusing slot
// capacity (including the slot's text buffer) when available.
func pushCastFrame(stack []castScanFrame, c *Caster, τ, τp schema.TypeID) []castScanFrame {
	if len(stack) < cap(stack) {
		stack = stack[:len(stack)+1]
	} else {
		stack = append(stack, castScanFrame{})
	}
	f := &stack[len(stack)-1]
	f.tS, f.tD = c.Src.TypeOf(τ), c.Dst.TypeOf(τp)
	f.ida = nil
	f.idaState = 0
	f.contentDone = false
	f.text = f.text[:0]
	if !f.tD.Simple {
		if f.tS.Simple {
			// No source knowledge about element children: scan the plain
			// target DFA.
			f.idaState = f.tD.DFA.Start()
		} else {
			f.ida = c.contentIDA(τ, τp)
			f.idaState = f.ida.D.Start()
			if f.ida.Classify(f.idaState) == fa.ImmediateAccept {
				f.contentDone = true
			}
		}
	}
	return stack
}

func (c *Caster) closeScanFrame(f *castScanFrame, st *Stats) error {
	if f.tD.Simple {
		st.ValuesChecked++
		if !f.tD.Value.AcceptsValue(string(f.text)) {
			return fmt.Errorf("stream: value %q does not satisfy simple target type %q (%s)",
				f.text, f.tD.Name, f.tD.Value)
		}
		return nil
	}
	if f.contentDone {
		return nil
	}
	if f.ida != nil {
		if !f.ida.D.IsAccept(f.idaState) {
			return fmt.Errorf("stream: children do not complete target content model of %q", f.tD.Name)
		}
		return nil
	}
	// Plain target-DFA scan (source-simple case).
	if !f.tD.DFA.IsAccept(f.idaState) {
		return fmt.Errorf("stream: children do not complete target content model of %q", f.tD.Name)
	}
	return nil
}
