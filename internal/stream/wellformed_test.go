package stream

import (
	"io"
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
)

// miniCastPair builds the smallest schema pair both walkers accept:
// root <comment/> with empty content under both source and target.
func miniCastPair(t *testing.T) (*schema.Schema, *schema.Schema) {
	t.Helper()
	alpha := fa.NewAlphabet()
	src := schema.New(alpha)
	se, _ := src.AddComplexType("SrcEmpty", regexpsym.Epsilon{})
	src.SetRoot("comment", se)
	src.MustCompile()
	dst := schema.New(alpha)
	de, _ := dst.AddComplexType("DstEmpty", regexpsym.Epsilon{})
	dst.SetRoot("comment", de)
	dst.MustCompile()
	return src, dst
}

// Both walkers, on both tokenizer paths, must hold the document to XML
// well-formedness outside the root element: trailing or leading
// non-whitespace text is a rejection, not a silent accept, and a stray
// end tag is a structured error rather than a panic. These are
// regression tests for two seed bugs: `<a/>trailing garbage` validated,
// and an end tag with an empty stack indexed stack[-1].
func TestWellFormednessOutsideRoot(t *testing.T) {
	cases := []struct {
		name  string
		doc   string
		valid bool
	}{
		{"plain root", `<comment/>`, true},
		{"ws around root", " \n\t<comment></comment>\r\n ", true},
		{"comment and pi around root", `<?p d?><!-- a --><comment/><!-- b --><?p d?>`, true},
		{"leading BOM", "\uFEFF<comment/>", true},
		{"trailing garbage", `<comment/>trailing garbage`, false},
		{"leading garbage", `junk<comment/>`, false},
		{"trailing BOM", "<comment/>\uFEFF", false},
		{"text between roots", `<comment/>x<comment/>`, false},
		{"stray end tag only", `</comment>`, false},
		{"stray end tag after root", `<comment></comment></comment>`, false},
		{"stray end tag before root", `</comment><comment/>`, false},
		{"unclosed root", `<comment>`, false},
		{"mismatched close", `<comment></other>`, false},
	}
	ps := []struct {
		name string
		opts []Option
	}{
		{"scanner", nil},
		{"encodingxml", []Option{WithEncodingXML()}},
	}
	src, dst := miniCastPair(t)
	for _, p := range ps {
		t.Run(p.name, func(t *testing.T) {
			v := NewValidator(dst, p.opts...)
			c, err := NewCaster(src, dst, p.opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range cases {
				if _, err := v.Validate(strings.NewReader(tc.doc)); (err == nil) != tc.valid {
					t.Errorf("validator %s: got err=%v, want valid=%v", tc.name, err, tc.valid)
				}
				if _, err := c.Validate(strings.NewReader(tc.doc)); (err == nil) != tc.valid {
					t.Errorf("caster %s: got err=%v, want valid=%v", tc.name, err, tc.valid)
				}
			}
		})
	}
}

// A stray end tag must never escape as a panic from either walker even
// when fed through a reader that splits tokens across Read calls.
func TestStrayEndTagDoesNotPanic(t *testing.T) {
	src, dst := miniCastPair(t)
	for _, doc := range []string{`</a>`, `</comment>`, `<comment/></comment>`, `  </comment>`} {
		for _, opts := range [][]Option{nil, {WithEncodingXML()}} {
			v := NewValidator(dst, opts...)
			if _, err := v.Validate(iotaReader(doc)); err == nil {
				t.Errorf("validator accepted %q", doc)
			}
			c, err := NewCaster(src, dst, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Validate(iotaReader(doc)); err == nil {
				t.Errorf("caster accepted %q", doc)
			}
		}
	}
}

// iotaReader yields the document one byte per Read call, exercising the
// scanner's refill paths around every token boundary.
func iotaReader(s string) *oneByteReader { return &oneByteReader{s: s} }

type oneByteReader struct {
	s string
	i int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.s) {
		return 0, io.EOF
	}
	p[0] = r.s[r.i]
	r.i++
	return 1, nil
}
