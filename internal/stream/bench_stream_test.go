package stream

import (
	"bytes"
	"testing"

	"repro/internal/wgen"
)

func BenchmarkStreamCast500(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 11}))
	c, err := NewCaster(ps.Source1, ps.Target)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Validate(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamFull500(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 11}))
	v := NewValidator(ps.Target)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Validate(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
