package stream

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/wgen"
)

// TestStreamingCastTrace replays the Fig. 1a → Fig. 2 cast over the token
// stream in trace mode: descend at the root, then one R_sub skim per child
// subtree, with paths and Dewey numbers agreeing with the tree engine's.
func TestStreamingCastTrace(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	c, err := NewCaster(ps.Source1, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	tr := &telemetry.Trace{}
	st, err := c.ValidateTrace(strings.NewReader(poXML(40, true, 99, 9)), tr)
	if err != nil {
		t.Fatalf("cast should pass: %v", err)
	}
	if got := tr.Count(telemetry.ActionSkip); int64(got) != st.SubsumedSkips {
		t.Fatalf("trace skips (%d) must equal Stats.SubsumedSkips (%d)", got, st.SubsumedSkips)
	}
	if st.SubsumedSkips != 3 {
		t.Fatalf("expected 3 skims (shipTo, billTo, items), got %+v", st)
	}
	events := tr.Events()
	if events[0].Action != telemetry.ActionDescend || events[0].Path != "/purchaseOrder" || events[0].Dewey != "ε" {
		t.Fatalf("first event should descend at the root: %+v", events[0])
	}
	var skips []telemetry.Event
	for _, ev := range events {
		if ev.Action == telemetry.ActionSkip {
			skips = append(skips, ev)
		}
	}
	wantPaths := []string{"/purchaseOrder/shipTo", "/purchaseOrder/billTo", "/purchaseOrder/items"}
	wantDeweys := []string{"0", "1", "2"}
	for i, ev := range skips {
		if ev.Path != wantPaths[i] || ev.Dewey != wantDeweys[i] || ev.Depth != 1 {
			t.Fatalf("skip %d = %+v, want path %s dewey %s depth 1", i, ev, wantPaths[i], wantDeweys[i])
		}
		if ev.SrcType == "" || ev.DstType == "" {
			t.Fatalf("skip event missing (τ, τ') names: %+v", ev)
		}
	}
	if st.WorkSavedRatio() <= 0.9 {
		t.Fatalf("nearly all elements should be skimmed, ratio = %v (%+v)", st.WorkSavedRatio(), st)
	}
}

// TestStreamTraceMatchesUntracedStats: trace mode must not change the work
// counters.
func TestStreamTraceMatchesUntracedStats(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	c, err := NewCaster(ps.Source2, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	xml := poXML(25, true, 99, 4)
	plain, err := c.Validate(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := c.ValidateTrace(strings.NewReader(xml), &telemetry.Trace{})
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Fatalf("tracing changed the stats:\nplain  %+v\ntraced %+v", plain, traced)
	}
}
