// Package stream validates XML directly from a token stream, without
// materializing a document tree. Memory is proportional to document depth.
//
// Two validators are provided:
//
//   - Validator: full validation against one schema (the streaming
//     counterpart of package baseline).
//   - Caster: streaming schema cast validation — the §3.2 algorithm over
//     SAX-style events. A subtree whose (source, target) type pair is
//     subsumed is *skimmed*: its tokens are consumed with no automaton
//     steps, no facet checks and no per-node work beyond depth tracking;
//     a disjoint pair rejects immediately. Content models are checked with
//     the §4 immediate decision automata, so a model check can conclude
//     (accept) before the remaining children arrive.
//
// Unlike the tree engine, a streaming caster cannot avoid *reading* skipped
// input — the bytes still flow through the tokenizer — but it avoids all
// validation work for them, which is where the time goes in practice.
package stream

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/fa"
	"repro/internal/schema"
)

// Stats counts streaming validation work. Field names are shared with
// internal/cast.Stats and the public revalidate.Stats/StreamStats so the
// four views of "work done" stay comparable (a counter means the same thing
// wherever it appears).
type Stats struct {
	// ElementsVisited counts elements that received validation work.
	ElementsVisited int64
	// ElementsSkimmed counts elements consumed inside subsumed subtrees
	// with no validation work (the streaming analogue of a skipped
	// subtree's interior).
	ElementsSkimmed int64
	// AutomatonSteps counts content-model transitions taken — exactly the
	// number of child-label symbols *scanned*.
	AutomatonSteps int64
	// SymbolsSkipped counts child labels that arrived after an immediate
	// decision automaton had already settled the content-model verdict:
	// symbols §4's c_immed saved from scanning.
	SymbolsSkipped int64
	// SubsumedSkips counts subtrees skimmed because (τ, τ') ∈ R_sub.
	SubsumedSkips int64
	// DisjointRejects counts rejections due to (τ, τ') ∈ R_dis (0 or 1 per
	// validation, since the first one aborts).
	DisjointRejects int64
	// ValuesChecked counts simple values tested against facets.
	ValuesChecked int64
	// MaxDepth is the deepest element depth reached (root = 0), counting
	// skimmed elements. Merged with max, not sum, when totals combine.
	MaxDepth int64
}

// Add accumulates d into s. Each Validate call returns its own
// request-scoped Stats; callers that serve many requests (the batch APIs,
// the castd daemon) merge them into cumulative totals with Add.
func (s *Stats) Add(d Stats) {
	s.ElementsVisited += d.ElementsVisited
	s.ElementsSkimmed += d.ElementsSkimmed
	s.AutomatonSteps += d.AutomatonSteps
	s.SymbolsSkipped += d.SymbolsSkipped
	s.SubsumedSkips += d.SubsumedSkips
	s.DisjointRejects += d.DisjointRejects
	s.ValuesChecked += d.ValuesChecked
	if d.MaxDepth > s.MaxDepth {
		s.MaxDepth = d.MaxDepth
	}
}

// WorkSavedRatio is the fraction of elements the caster skimmed instead of
// validating: skimmed/(visited+skimmed), clamped to 0 when nothing flowed.
// Unlike the tree engine, the stream sees every element go by, so the total
// is known without outside help.
func (s Stats) WorkSavedRatio() float64 {
	total := s.ElementsVisited + s.ElementsSkimmed
	if total == 0 {
		return 0
	}
	return float64(s.ElementsSkimmed) / float64(total)
}

// SymbolsScannedRatio is the fraction of content-model symbols actually
// scanned out of all symbols seen: steps/(steps+skipped). 1 when no
// immediate decision fired (or nothing was scanned at all).
func (s Stats) SymbolsScannedRatio() float64 {
	total := s.AutomatonSteps + s.SymbolsSkipped
	if total == 0 {
		return 1
	}
	return float64(s.AutomatonSteps) / float64(total)
}

// noteDepth records that the stream reached an element at depth d.
func (s *Stats) noteDepth(d int) {
	if int64(d) > s.MaxDepth {
		s.MaxDepth = int64(d)
	}
}

// Validator performs full streaming validation against one schema.
type Validator struct {
	S *schema.Schema

	stdXML bool
}

// NewValidator returns a streaming validator for a compiled schema. By
// default it tokenizes with the byte-level scanner (package xmlscan);
// WithEncodingXML selects the retained encoding/xml path instead.
func NewValidator(s *schema.Schema, opts ...Option) *Validator {
	if !s.Compiled() {
		panic("stream: schema must be compiled")
	}
	return &Validator{S: s, stdXML: buildOptions(opts).stdXML}
}

// frame is the per-open-element state of the full validator.
type frame struct {
	t        *schema.Type
	dfaState int
	text     strings.Builder
}

// Validate reads one XML document from r and validates it.
func (v *Validator) Validate(r io.Reader) (Stats, error) {
	return v.ValidateContext(context.Background(), r, Limits{})
}

// ValidateContext is Validate with cooperative cancellation and resource
// limits, mirroring Caster.ValidateContext: the walker polls ctx.Done()
// every cancelCheckEvery tokens, and a document exceeding lim's depth or
// element bounds is rejected with a *LimitError. The zero Limits is
// unlimited.
func (v *Validator) ValidateContext(ctx context.Context, r io.Reader, lim Limits) (Stats, error) {
	if v.stdXML {
		return v.validateStd(ctx, r, lim)
	}
	return v.validateScan(ctx, r, lim)
}

// validateStd is the encoding/xml-backed body of Validate, kept as the
// reference the differential fuzz targets compare the scanner against.
func (v *Validator) validateStd(ctx context.Context, r io.Reader, lim Limits) (Stats, error) {
	var st Stats
	dec := xml.NewDecoder(r)
	var stack []*frame
	rootSeen := false
	firstToken := true
	done := ctx.Done()
	countdown := cancelCheckEvery
	for {
		if done != nil {
			countdown--
			if countdown <= 0 {
				countdown = cancelCheckEvery
				select {
				case <-done:
					return st, fmt.Errorf("stream: validation canceled after %d elements: %w",
						st.ElementsVisited+st.ElementsSkimmed, context.Cause(ctx))
				default:
				}
			}
		}
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, fmt.Errorf("stream: %w", err)
		}
		isFirst := firstToken
		firstToken = false
		switch t := tok.(type) {
		case xml.StartElement:
			label := t.Name.Local
			var τ schema.TypeID
			if len(stack) == 0 {
				if rootSeen {
					return st, fmt.Errorf("stream: multiple root elements")
				}
				rootSeen = true
				τ = v.S.RootType(label)
				if τ == schema.NoType {
					return st, fmt.Errorf("stream: label %q is not a permitted root", label)
				}
			} else {
				parent := stack[len(stack)-1]
				if parent.t.Simple {
					return st, fmt.Errorf("stream: element %q inside simple content", label)
				}
				sym := v.S.Alpha.Lookup(label)
				if sym == fa.NoSymbol {
					return st, fmt.Errorf("stream: label %q unknown to the schema", label)
				}
				parent.dfaState = parent.t.DFA.Step(parent.dfaState, sym)
				st.AutomatonSteps++
				if parent.dfaState == fa.Dead {
					return st, fmt.Errorf("stream: child %q not allowed by content model of %q", label, parent.t.Name)
				}
				var ok bool
				τ, ok = parent.t.Child[sym]
				if !ok {
					return st, fmt.Errorf("stream: label %q has no child type under %q", label, parent.t.Name)
				}
			}
			st.ElementsVisited++
			if err := lim.checkDepth(len(stack) + 1); err != nil {
				return st, err
			}
			if err := lim.checkElements(st.ElementsVisited); err != nil {
				return st, err
			}
			st.noteDepth(len(stack))
			tt := v.S.TypeOf(τ)
			f := &frame{t: tt}
			if !tt.Simple {
				f.dfaState = tt.DFA.Start()
			}
			stack = append(stack, f)
		case xml.EndElement:
			if len(stack) == 0 {
				// Unreachable while encoding/xml enforces tag matching,
				// but the invariant belongs to the walker, not the
				// tokenizer.
				return st, fmt.Errorf("stream: unexpected end element </%s>", t.Name.Local)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := v.closeFrame(f, &st); err != nil {
				return st, err
			}
		case xml.CharData:
			text := string(t)
			if isFirst {
				// The scanner path skips a leading byte-order mark;
				// encoding/xml surfaces it as text. Strip it so both
				// paths see the same document.
				text = strings.TrimPrefix(text, "\uFEFF")
			}
			if len(stack) == 0 {
				if strings.TrimSpace(text) == "" {
					continue // inter-element whitespace around the root
				}
				return st, fmt.Errorf("stream: text outside the root element")
			}
			f := stack[len(stack)-1]
			if strings.TrimSpace(text) == "" && !f.t.Simple {
				continue // inter-element whitespace
			}
			if !f.t.Simple {
				return st, fmt.Errorf("stream: text content under element-only type %q", f.t.Name)
			}
			f.text.WriteString(text)
		}
	}
	if !rootSeen {
		return st, fmt.Errorf("stream: no root element")
	}
	return st, nil
}

func (v *Validator) closeFrame(f *frame, st *Stats) error {
	if f.t.Simple {
		st.ValuesChecked++
		if !f.t.Value.AcceptsValue(f.text.String()) {
			return fmt.Errorf("stream: value %q does not satisfy simple type %q (%s)",
				f.text.String(), f.t.Name, f.t.Value)
		}
		return nil
	}
	if !f.t.DFA.IsAccept(f.dfaState) {
		return fmt.Errorf("stream: children do not complete content model of %q", f.t.Name)
	}
	return nil
}
