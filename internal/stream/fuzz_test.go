package stream

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/wgen"
)

// FuzzStreamValidate feeds arbitrary bytes through the streaming caster
// under the daemon's resource limits. The contract under fuzzing is the
// fault-containment contract: any input — malformed XML, truncated
// documents, pathological nesting, binary garbage — must produce a verdict
// or an error, never a panic, never a hang, and never blow past the
// configured depth/element limits.
func FuzzStreamValidate(f *testing.F) {
	ps := wgen.NewPaperSchemas()
	c, err := NewCaster(ps.Source1, ps.Target)
	if err != nil {
		f.Fatal(err)
	}
	// The shared corpus covers the paper's running example, the scanner's
	// grammar corners (CDATA, entity refs, comments and PIs inside skimmed
	// subtrees) and the well-formedness regressions; one unknown-label seed
	// rides on top.
	diffSeeds(f)
	f.Add([]byte(`<purchaseOrder><bogus/></purchaseOrder>`))

	const maxDepth, maxElements = 64, 10_000
	lim := Limits{MaxDepth: maxDepth, MaxElements: maxElements}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := c.ValidateContext(context.Background(), bytes.NewReader(data), lim)
		// MaxDepth counts open elements; the deepest recorded depth index
		// is root=0, so the stat may reach the bound but not pass it.
		if st.MaxDepth >= maxDepth {
			t.Fatalf("depth limit not enforced: reached %d (limit %d)", st.MaxDepth, maxDepth)
		}
		// The element check fires after counting the element that crossed
		// the bound, so the stat may overshoot by exactly one.
		if total := st.ElementsVisited + st.ElementsSkimmed; total > maxElements+1 {
			t.Fatalf("element limit not enforced: consumed %d (limit %d)", total, maxElements)
		}
		_ = err // any verdict is acceptable; crashing or hanging is not
	})
}
