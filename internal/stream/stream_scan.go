package stream

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/xmlscan"
)

// sframe is the per-open-element state of the scanner-based full
// validator. Frames live in a pooled slice of values: pushing reuses the
// slot (and its retained text buffer) left by a previously popped frame,
// so steady-state validation allocates nothing per element.
type sframe struct {
	t        *schema.Type
	dfaState int
	text     []byte
}

// vstate is the pooled per-validation state of the full validator.
type vstate struct {
	stack []sframe
}

var vstatePool = sync.Pool{New: func() any { return new(vstate) }}

// pushSFrame appends a frame for t, reusing slot capacity (including the
// slot's text buffer) when available.
func pushSFrame(stack []sframe, t *schema.Type) []sframe {
	if len(stack) < cap(stack) {
		stack = stack[:len(stack)+1]
	} else {
		stack = append(stack, sframe{})
	}
	f := &stack[len(stack)-1]
	f.t = t
	f.text = f.text[:0]
	f.dfaState = 0
	if !t.Simple {
		f.dfaState = t.DFA.Start()
	}
	return stack
}

// validateScan is the scanner-backed body of Validator.Validate and
// Validator.ValidateContext: same verdicts and statistics as validateStd,
// built on xmlscan events instead of encoding/xml tokens.
func (v *Validator) validateScan(ctx context.Context, r io.Reader, lim Limits) (Stats, error) {
	var st Stats
	sc := xmlscan.Get(r)
	defer sc.Release()
	vs := vstatePool.Get().(*vstate)
	stack := vs.stack[:0]
	defer func() {
		vs.stack = stack
		vstatePool.Put(vs)
	}()
	rootSeen := false
	done := ctx.Done()
	countdown := cancelCheckEvery

	for {
		if done != nil {
			countdown--
			if countdown <= 0 {
				countdown = cancelCheckEvery
				select {
				case <-done:
					return st, fmt.Errorf("stream: validation canceled after %d elements: %w",
						st.ElementsVisited+st.ElementsSkimmed, context.Cause(ctx))
				default:
				}
			}
		}
		ev, err := sc.Next()
		if err != nil {
			return st, fmt.Errorf("stream: %w", err)
		}
		switch ev {
		case xmlscan.EventEOF:
			if !rootSeen {
				return st, fmt.Errorf("stream: no root element")
			}
			return st, nil
		case xmlscan.EventStart:
			label := sc.Name()
			var τ schema.TypeID
			if len(stack) == 0 {
				if rootSeen {
					return st, fmt.Errorf("stream: multiple root elements")
				}
				rootSeen = true
				τ = v.S.RootTypeSym(v.S.Alpha.LookupBytes(label))
				if τ == schema.NoType {
					return st, fmt.Errorf("stream: label %q is not a permitted root", label)
				}
			} else {
				parent := &stack[len(stack)-1]
				if parent.t.Simple {
					return st, fmt.Errorf("stream: element %q inside simple content", label)
				}
				sym := v.S.Alpha.LookupBytes(label)
				if sym == fa.NoSymbol {
					return st, fmt.Errorf("stream: label %q unknown to the schema", label)
				}
				parent.dfaState = parent.t.DFA.Step(parent.dfaState, sym)
				st.AutomatonSteps++
				if parent.dfaState == fa.Dead {
					return st, fmt.Errorf("stream: child %q not allowed by content model of %q", label, parent.t.Name)
				}
				var ok bool
				τ, ok = parent.t.Child[sym]
				if !ok {
					return st, fmt.Errorf("stream: label %q has no child type under %q", label, parent.t.Name)
				}
			}
			st.ElementsVisited++
			if err := lim.checkDepth(len(stack) + 1); err != nil {
				return st, err
			}
			if err := lim.checkElements(st.ElementsVisited); err != nil {
				return st, err
			}
			st.noteDepth(len(stack))
			stack = pushSFrame(stack, v.S.TypeOf(τ))
		case xmlscan.EventEnd:
			if len(stack) == 0 {
				// Unreachable through the scanner (it enforces tag
				// matching), but the walker owns its own invariant.
				return st, fmt.Errorf("stream: unexpected end element </%s>", sc.Name())
			}
			f := &stack[len(stack)-1]
			err := v.closeScanFrame(f, &st)
			stack = stack[:len(stack)-1]
			if err != nil {
				return st, err
			}
		case xmlscan.EventText:
			text := sc.Text()
			if len(stack) == 0 {
				if len(bytes.TrimSpace(text)) == 0 {
					continue // inter-element whitespace around the root
				}
				return st, fmt.Errorf("stream: text outside the root element")
			}
			f := &stack[len(stack)-1]
			if !f.t.Simple {
				if len(bytes.TrimSpace(text)) == 0 {
					continue // inter-element whitespace
				}
				return st, fmt.Errorf("stream: text content under element-only type %q", f.t.Name)
			}
			f.text = append(f.text, text...)
		}
	}
}

func (v *Validator) closeScanFrame(f *sframe, st *Stats) error {
	if f.t.Simple {
		st.ValuesChecked++
		if !f.t.Value.AcceptsValue(string(f.text)) {
			return fmt.Errorf("stream: value %q does not satisfy simple type %q (%s)",
				f.text, f.t.Name, f.t.Value)
		}
		return nil
	}
	if !f.t.DFA.IsAccept(f.dfaState) {
		return fmt.Errorf("stream: children do not complete content model of %q", f.t.Name)
	}
	return nil
}
