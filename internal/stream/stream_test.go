package stream

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

func poXML(items int, bill bool, maxQty int, seed int64) string {
	doc := wgen.PODocument(wgen.PODocOptions{Items: items, IncludeBillTo: bill, MaxQuantity: maxQty, Seed: seed})
	return string(wgen.POXMLBytes(doc))
}

func TestStreamingFullValidation(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	v := NewValidator(ps.Target)
	st, err := v.Validate(strings.NewReader(poXML(20, true, 99, 1)))
	if err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	if st.ElementsVisited == 0 || st.ValuesChecked == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if _, err := v.Validate(strings.NewReader(poXML(20, false, 99, 1))); err == nil {
		t.Fatal("billTo-less doc must fail")
	}
	if _, err := v.Validate(strings.NewReader(`<purchaseOrder><bogus/></purchaseOrder>`)); err == nil {
		t.Fatal("unknown label must fail")
	}
	if _, err := v.Validate(strings.NewReader(``)); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := v.Validate(strings.NewReader(`<unknownRoot/>`)); err == nil {
		t.Fatal("unknown root must fail")
	}
}

// The streaming validator must agree with the tree-based baseline on random
// documents from all three paper schemas.
func TestStreamingAgreesWithBaseline(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	rng := rand.New(rand.NewSource(11))
	for _, s := range []*schema.Schema{ps.Source1, ps.Target, ps.Source2} {
		v := NewValidator(s)
		base := baseline.New(s)
		gen := wgen.NewGenerator(s, rng)
		for i := 0; i < 30; i++ {
			doc, ok := gen.Document()
			if !ok {
				t.Fatal("generation failed")
			}
			xml := xmltree.XMLString(doc)
			_, streamErr := v.Validate(strings.NewReader(xml))
			_, baseErr := base.Validate(doc)
			if (streamErr == nil) != (baseErr == nil) {
				t.Fatalf("stream=%v baseline=%v on %s", streamErr, baseErr, xml)
			}
		}
	}
}

func TestStreamingCastExperiment1(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	c, err := NewCaster(ps.Source1, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Validate(strings.NewReader(poXML(100, true, 99, 2)))
	if err != nil {
		t.Fatalf("cast should pass: %v", err)
	}
	// Everything under shipTo/billTo/items is skimmed: only a handful of
	// elements receive validation work.
	if st.ElementsVisited > 4 {
		t.Fatalf("expected ≤4 processed elements, got %+v", st)
	}
	if st.ElementsSkimmed < 300 {
		t.Fatalf("expected large skim count, got %+v", st)
	}
	if st.ValuesChecked != 0 {
		t.Fatalf("no facet checks expected in experiment 1: %+v", st)
	}
	if _, err := c.Validate(strings.NewReader(poXML(100, false, 99, 2))); err == nil {
		t.Fatal("billTo-less doc must fail")
	}
}

func TestStreamingCastExperiment2(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	c, err := NewCaster(ps.Source2, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Validate(strings.NewReader(poXML(50, true, 99, 3)))
	if err != nil {
		t.Fatalf("cast should pass: %v", err)
	}
	if st.ValuesChecked != 50 {
		t.Fatalf("exactly the 50 quantities should be checked: %+v", st)
	}
	// productName/USPrice subtrees are skimmed.
	if st.ElementsSkimmed == 0 {
		t.Fatalf("expected skimming of subsumed item children: %+v", st)
	}
	// A quantity over the cap fails.
	bad := strings.Replace(poXML(50, true, 99, 3), "<quantity>", "<quantity>1", 1)
	if _, err := c.Validate(strings.NewReader(bad)); err == nil {
		t.Fatal("oversized quantity must fail")
	}
}

// Differential: the streaming caster agrees with the tree-based baseline on
// random documents, across paper schema pairs.
func TestStreamingCastAgreesWithBaseline(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	rng := rand.New(rand.NewSource(13))
	pairs := [][2]*schema.Schema{
		{ps.Source1, ps.Target},
		{ps.Source2, ps.Target},
		{ps.Target, ps.Source1},
		{ps.Target, ps.Source2},
	}
	for _, pair := range pairs {
		src, dst := pair[0], pair[1]
		c, err := NewCaster(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		base := baseline.New(dst)
		gen := wgen.NewGenerator(src, rng)
		for i := 0; i < 30; i++ {
			doc, ok := gen.Document()
			if !ok {
				t.Fatal("generation failed")
			}
			xml := xmltree.XMLString(doc)
			_, streamErr := c.Validate(strings.NewReader(xml))
			_, baseErr := base.Validate(doc)
			if (streamErr == nil) != (baseErr == nil) {
				t.Fatalf("stream cast=%v baseline=%v on %s", streamErr, baseErr, xml)
			}
		}
	}
}

func TestStreamingCastMixedSimpleComplex(t *testing.T) {
	// Source: comment is a string; target: comment must be an empty
	// element. "<comment/>" satisfies both; "<comment>x</comment>" only
	// the source.
	alpha := fa.NewAlphabet()
	src := schema.New(alpha)
	str, _ := src.AddSimpleType("str", schema.NewSimpleType(schema.StringKind))
	src.SetRoot("comment", str)
	src.MustCompile()

	dst := schema.New(alpha)
	empty, _ := dst.AddComplexType("Empty", regexpsym.Epsilon{})
	dst.SetRoot("comment", empty)
	dst.MustCompile()

	c, err := NewCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Validate(strings.NewReader(`<comment/>`)); err != nil {
		t.Fatalf("empty comment should cast: %v", err)
	}
	if _, err := c.Validate(strings.NewReader(`<comment>x</comment>`)); err == nil {
		t.Fatal("text content must fail against the EMPTY target")
	}
}

func TestStreamingCastContractErrors(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	c, _ := NewCaster(ps.Source1, ps.Target)
	if _, err := c.Validate(strings.NewReader(`<notARoot/>`)); err == nil {
		t.Fatal("unknown root must fail")
	}
	if _, err := c.Validate(strings.NewReader(`<purchaseOrder/><purchaseOrder/>`)); err == nil {
		t.Fatal("multiple roots must fail")
	}
	if _, err := c.Validate(strings.NewReader(`<purchaseOrder>text<shipTo/></purchaseOrder>`)); err == nil {
		t.Fatal("text in element content must fail")
	}
}

func TestValidatorPanicsOnUncompiled(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewValidator(schema.New(nil))
}
