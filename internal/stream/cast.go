package stream

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/castmap"
	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/subsume"
	"repro/internal/telemetry"
)

// Caster performs streaming schema cast validation: the incoming document
// is known to satisfy the source schema, and the stream decides validity
// under the target schema, skimming subsumed subtrees and rejecting at the
// first disjoint pair.
//
// After NewCaster, a Caster is immutable and safe for concurrent use:
// content-model IDAs for every type pair reachable from the shared roots
// are precomputed eagerly (no first-document latency spike), and any
// on-demand pair goes through the table's lock-free copy-on-write
// overflow, so concurrent validations never contend on a mutex.
type Caster struct {
	Src, Dst *schema.Schema
	Rel      *subsume.Relations

	casters *castmap.Table
	stdXML  bool
}

// NewCaster preprocesses a compiled (source, target) pair sharing one
// alphabet. By default validation tokenizes with the byte-level scanner
// (package xmlscan); WithEncodingXML selects the retained encoding/xml
// path instead.
func NewCaster(src, dst *schema.Schema, opts ...Option) (*Caster, error) {
	rel, err := subsume.Compute(src, dst)
	if err != nil {
		return nil, err
	}
	return &Caster{Src: src, Dst: dst, Rel: rel,
		casters: castmap.New(src, dst, rel, true), stdXML: buildOptions(opts).stdXML}, nil
}

// NewCasterFrom builds a streaming caster from preprocessing another
// component already paid for: rel and table must come from the same
// compiled (src, dst) pair (e.g. a cast.Engine). The daemon uses this to
// hold one set of relations and IDAs per schema pair shared by the tree
// and streaming validation modes.
func NewCasterFrom(src, dst *schema.Schema, rel *subsume.Relations, table *castmap.Table, opts ...Option) *Caster {
	return &Caster{Src: src, Dst: dst, Rel: rel, casters: table, stdXML: buildOptions(opts).stdXML}
}

// CasterSizes reports the caster's content-model footprint: caster count
// and total c_immed IDA states.
func (c *Caster) CasterSizes() (casters, idaStates int) {
	return c.casters.Sizes()
}

func (c *Caster) contentIDA(τ, τp schema.TypeID) *fa.IDA {
	return c.casters.Get(τ, τp).CImmed
}

// PrecomputedCasters reports how many content-model cast automata the
// caster holds; diagnostics for the preprocessing benchmarks.
func (c *Caster) PrecomputedCasters() int {
	return c.casters.Len()
}

// castFrame is the per-open-element state of the streaming caster.
type castFrame struct {
	tS, tD *schema.Type
	// ida scans the children word through c_immed; once it immediately
	// accepts, contentDone is set and no more steps are taken (the model
	// check is settled even though children keep arriving and are still
	// cast individually). When the source type is simple (no source
	// knowledge about element children), ida is nil and idaState runs the
	// plain target DFA instead.
	ida         *fa.IDA
	idaState    int
	contentDone bool
	text        strings.Builder
}

// traceCtx tracks where the stream currently is — open-element labels and
// the Dewey number of the innermost open element — so trace events can be
// tagged with paths. Allocated only in trace mode; the hot path carries a
// nil pointer. The stream's Dewey numbers count element children only
// (text nodes never open frames), which can differ from the tree engine's
// Dewey numbers on mixed-content documents.
type traceCtx struct {
	labels []string // open element labels, root first
	dewey  []int    // Dewey number of the innermost open element
	childN []int    // per open frame: element children seen so far
}

// locate returns the path and Dewey string of a child of the innermost open
// element (or of the root when nothing is open), given its child index.
func (tc *traceCtx) locate(label string, idx int) (path, dewey string) {
	path = "/" + label
	if len(tc.labels) > 0 {
		path = "/" + strings.Join(tc.labels, "/") + "/" + label
	}
	parts := make([]string, 0, len(tc.dewey)+1)
	for _, d := range tc.dewey {
		parts = append(parts, strconv.Itoa(d))
	}
	if len(tc.labels) > 0 {
		parts = append(parts, strconv.Itoa(idx))
	}
	if len(parts) == 0 {
		return path, "ε"
	}
	return path, strings.Join(parts, ".")
}

// Validate reads one XML document — assumed valid under the source schema —
// from r and decides validity under the target schema.
func (c *Caster) Validate(r io.Reader) (Stats, error) {
	return c.validate(context.Background(), r, nil, Limits{})
}

// ValidateContext is Validate with cooperative cancellation and resource
// limits: the walker polls ctx.Done() every cancelCheckEvery tokens (so
// the hot path stays lock-free and a canceled cast stops within one check
// interval), and a document exceeding lim's depth or element bounds is
// rejected with a *LimitError. The zero Limits is unlimited.
func (c *Caster) ValidateContext(ctx context.Context, r io.Reader, lim Limits) (Stats, error) {
	return c.validate(ctx, r, nil, lim)
}

// ValidateTrace is Validate in trace mode: each skim, reject and descend
// decision is recorded into tr with the element's path, Dewey number and
// (τ, τ') pair. Trace mode allocates path-tracking state the hot path never
// touches.
func (c *Caster) ValidateTrace(r io.Reader, tr *telemetry.Trace) (Stats, error) {
	return c.validate(context.Background(), r, tr, Limits{})
}

// ValidateTraceContext is ValidateTrace with the cancellation and limit
// behavior of ValidateContext.
func (c *Caster) ValidateTraceContext(ctx context.Context, r io.Reader, tr *telemetry.Trace, lim Limits) (Stats, error) {
	return c.validate(ctx, r, tr, lim)
}

func (c *Caster) validate(ctx context.Context, r io.Reader, tr *telemetry.Trace, lim Limits) (Stats, error) {
	if c.stdXML {
		return c.validateStd(ctx, r, tr, lim)
	}
	return c.validateScan(ctx, r, tr, lim)
}

// validateStd is the encoding/xml-backed body of the streaming cast, kept
// as the reference the differential fuzz targets compare the scanner
// against.
func (c *Caster) validateStd(ctx context.Context, r io.Reader, tr *telemetry.Trace, lim Limits) (Stats, error) {
	var st Stats
	dec := xml.NewDecoder(r)
	var stack []*castFrame
	skimDepth := 0 // >0: inside a subsumed subtree, counting open elements
	rootSeen := false
	firstToken := true
	var tc *traceCtx
	if tr != nil {
		tc = &traceCtx{}
	}
	// done is nil for context.Background(), making every cancellation check
	// a no-op branch; countdown amortizes the channel poll.
	done := ctx.Done()
	countdown := cancelCheckEvery

	for {
		if done != nil {
			countdown--
			if countdown <= 0 {
				countdown = cancelCheckEvery
				select {
				case <-done:
					return st, fmt.Errorf("stream: validation canceled after %d elements: %w",
						st.ElementsVisited+st.ElementsSkimmed, context.Cause(ctx))
				default:
				}
			}
		}
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, fmt.Errorf("stream: %w", err)
		}
		isFirst := firstToken
		firstToken = false
		switch t := tok.(type) {
		case xml.StartElement:
			if skimDepth > 0 {
				skimDepth++
				st.ElementsSkimmed++
				if err := lim.checkDepth(len(stack) + skimDepth); err != nil {
					return st, err
				}
				if err := lim.checkElements(st.ElementsVisited + st.ElementsSkimmed); err != nil {
					return st, err
				}
				st.noteDepth(len(stack) + skimDepth - 1)
				continue
			}
			label := t.Name.Local
			childIdx := 0
			if tc != nil && len(tc.childN) > 0 {
				childIdx = tc.childN[len(tc.childN)-1]
				tc.childN[len(tc.childN)-1]++
			}
			var τ, τp schema.TypeID
			if len(stack) == 0 {
				if rootSeen {
					return st, fmt.Errorf("stream: multiple root elements")
				}
				rootSeen = true
				τ = c.Src.RootType(label)
				τp = c.Dst.RootType(label)
				if τ == schema.NoType {
					return st, fmt.Errorf("stream: cast contract violated: %q is not a source root", label)
				}
				if τp == schema.NoType {
					return st, fmt.Errorf("stream: label %q is not a permitted root of the target schema", label)
				}
			} else {
				parent := stack[len(stack)-1]
				if parent.tD.Simple {
					return st, fmt.Errorf("stream: element %q under simple target type %q", label, parent.tD.Name)
				}
				sym := c.Src.Alpha.Lookup(label)
				if sym == fa.NoSymbol {
					return st, fmt.Errorf("stream: label %q unknown to the schemas", label)
				}
				if parent.contentDone {
					st.SymbolsSkipped++ // model verdict settled; symbol arrives unscanned
				} else {
					st.AutomatonSteps++
					if parent.ida != nil {
						parent.idaState = parent.ida.D.Step(parent.idaState, sym)
						switch parent.ida.Classify(parent.idaState) {
						case fa.ImmediateAccept:
							parent.contentDone = true
						case fa.ImmediateReject:
							return st, fmt.Errorf("stream: child %q not allowed by target content model of %q",
								label, parent.tD.Name)
						}
					} else {
						parent.idaState = parent.tD.DFA.Step(parent.idaState, sym)
						if parent.idaState == fa.Dead {
							return st, fmt.Errorf("stream: child %q not allowed by target content model of %q",
								label, parent.tD.Name)
						}
					}
				}
				τp = schema.NoType
				if t, ok := parent.tD.Child[sym]; ok {
					τp = t
				}
				if τp == schema.NoType {
					return st, fmt.Errorf("stream: label %q has no child type under target %q", label, parent.tD.Name)
				}
				τ = schema.NoType
				if !parent.tS.Simple {
					if t, ok := parent.tS.Child[sym]; ok {
						τ = t
					}
				}
				if τ == schema.NoType {
					return st, fmt.Errorf("stream: cast contract violated: no source child type for %q", label)
				}
			}
			st.ElementsVisited++
			if err := lim.checkDepth(len(stack) + 1); err != nil {
				return st, err
			}
			if err := lim.checkElements(st.ElementsVisited + st.ElementsSkimmed); err != nil {
				return st, err
			}
			st.noteDepth(len(stack))
			if c.Rel.Subsumed(τ, τp) {
				st.SubsumedSkips++
				if tr != nil {
					tr.Record(c.traceEvent(telemetry.ActionSkip, tc, label, childIdx, len(stack), τ, τp,
						"subsumed: subtree target-valid, skimming"))
				}
				skimDepth = 1 // everything below is target-valid: skim it
				continue
			}
			if c.Rel.Disjoint(τ, τp) {
				st.DisjointRejects++
				if tr != nil {
					tr.Record(c.traceEvent(telemetry.ActionReject, tc, label, childIdx, len(stack), τ, τp,
						"disjoint: no source-valid subtree satisfies the target type"))
				}
				return st, fmt.Errorf("stream: source type %q is disjoint from target type %q",
					c.Src.TypeOf(τ).Name, c.Dst.TypeOf(τp).Name)
			}
			f := &castFrame{tS: c.Src.TypeOf(τ), tD: c.Dst.TypeOf(τp)}
			if !f.tD.Simple {
				if f.tS.Simple {
					// No source knowledge about element children: scan the
					// plain target DFA.
					f.idaState = f.tD.DFA.Start()
				} else {
					f.ida = c.contentIDA(τ, τp)
					f.idaState = f.ida.D.Start()
					if f.ida.Classify(f.idaState) == fa.ImmediateAccept {
						f.contentDone = true
					}
				}
			}
			if tr != nil {
				action, detail := telemetry.ActionDescend, "neither subsumed nor disjoint: validating content"
				if f.tD.Simple {
					action, detail = telemetry.ActionSimple, "simple target type: value checked at close"
				}
				tr.Record(c.traceEvent(action, tc, label, childIdx, len(stack), τ, τp, detail))
			}
			if tc != nil {
				if len(tc.labels) > 0 {
					tc.dewey = append(tc.dewey, childIdx)
				}
				tc.labels = append(tc.labels, label)
				tc.childN = append(tc.childN, 0)
			}
			stack = append(stack, f)
		case xml.EndElement:
			if skimDepth > 0 {
				skimDepth--
				continue
			}
			if len(stack) == 0 {
				// Unreachable while encoding/xml enforces tag matching,
				// but the invariant belongs to the walker, not the
				// tokenizer.
				return st, fmt.Errorf("stream: unexpected end element </%s>", t.Name.Local)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if tc != nil {
				tc.labels = tc.labels[:len(tc.labels)-1]
				tc.childN = tc.childN[:len(tc.childN)-1]
				if len(tc.dewey) > 0 {
					tc.dewey = tc.dewey[:len(tc.dewey)-1]
				}
			}
			if err := c.closeFrame(f, &st); err != nil {
				return st, err
			}
		case xml.CharData:
			if skimDepth > 0 {
				continue
			}
			text := string(t)
			if isFirst {
				// The scanner path skips a leading byte-order mark;
				// encoding/xml surfaces it as text. Strip it so both
				// paths see the same document.
				text = strings.TrimPrefix(text, "\uFEFF")
			}
			if len(stack) == 0 {
				if strings.TrimSpace(text) == "" {
					continue // inter-element whitespace around the root
				}
				return st, fmt.Errorf("stream: text outside the root element")
			}
			f := stack[len(stack)-1]
			if !f.tD.Simple {
				if strings.TrimSpace(text) == "" {
					continue
				}
				return st, fmt.Errorf("stream: text content under element-only target type %q", f.tD.Name)
			}
			f.text.WriteString(text)
		}
	}
	if !rootSeen {
		return st, fmt.Errorf("stream: no root element")
	}
	return st, nil
}

// traceEvent builds one decision event for the element named label, the
// idx-th element child of the innermost open frame, at the given depth.
func (c *Caster) traceEvent(a telemetry.Action, tc *traceCtx, label string, idx, depth int, τ, τp schema.TypeID, detail string) telemetry.Event {
	path, dewey := tc.locate(label, idx)
	ev := telemetry.Event{Action: a, Path: path, Dewey: dewey, Depth: depth, Detail: detail}
	if τ != schema.NoType {
		ev.SrcType = c.Src.TypeOf(τ).Name
	}
	if τp != schema.NoType {
		ev.DstType = c.Dst.TypeOf(τp).Name
	}
	return ev
}

func (c *Caster) closeFrame(f *castFrame, st *Stats) error {
	if f.tD.Simple {
		st.ValuesChecked++
		if !f.tD.Value.AcceptsValue(f.text.String()) {
			return fmt.Errorf("stream: value %q does not satisfy simple target type %q (%s)",
				f.text.String(), f.tD.Name, f.tD.Value)
		}
		return nil
	}
	if f.contentDone {
		return nil
	}
	if f.ida != nil {
		if !f.ida.D.IsAccept(f.idaState) {
			return fmt.Errorf("stream: children do not complete target content model of %q", f.tD.Name)
		}
		return nil
	}
	// Plain target-DFA scan (source-simple case).
	if !f.tD.DFA.IsAccept(f.idaState) {
		return fmt.Errorf("stream: children do not complete target content model of %q", f.tD.Name)
	}
	return nil
}
