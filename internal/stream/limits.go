package stream

import "fmt"

// cancelCheckEvery is the amortization granularity of cancellation checks:
// the streaming walkers poll ctx.Done() once per this many tokens, so the
// hot path pays one counter decrement per token and one channel poll per
// interval, and a canceled validation stops within one interval of work.
const cancelCheckEvery = 256

// Limits bounds the resources one streaming validation may consume.
// Zero values are unlimited; the daemon sets both from its flags so a
// hostile document — arbitrarily deep nesting, or an endless element
// stream — is rejected with a typed error instead of exhausting the stack
// of open frames or running unbounded.
type Limits struct {
	// MaxDepth caps element nesting: a document may hold at most MaxDepth
	// simultaneously open elements (the root counts as one). Skimmed
	// elements count too — subsumption skips validation work, not the
	// depth-proportional frame bookkeeping an adversary would target.
	MaxDepth int
	// MaxElements caps the total number of elements (validated plus
	// skimmed) one document may carry.
	MaxElements int64
}

// LimitError reports a document that exceeded a configured resource limit.
// It is a verdict about the request, not the schema pair: the serving
// layer maps it to 422, distinct from both invalid-document verdicts and
// timeouts.
type LimitError struct {
	// Kind is "depth" or "elements".
	Kind string
	// Limit is the configured bound that was exceeded.
	Limit int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("stream: document exceeds the configured %s limit (%d)", e.Kind, e.Limit)
}

// checkDepth enforces lim.MaxDepth against the count of open elements.
func (lim Limits) checkDepth(open int) error {
	if lim.MaxDepth > 0 && open > lim.MaxDepth {
		return &LimitError{Kind: "depth", Limit: int64(lim.MaxDepth)}
	}
	return nil
}

// checkElements enforces lim.MaxElements against the running element count.
func (lim Limits) checkElements(n int64) error {
	if lim.MaxElements > 0 && n > lim.MaxElements {
		return &LimitError{Kind: "elements", Limit: lim.MaxElements}
	}
	return nil
}
