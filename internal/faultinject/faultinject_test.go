package faultinject

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsTransparent(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("enabled after Disable")
	}
	if err := Compile(); err != nil {
		t.Fatalf("disabled Compile: %v", err)
	}
	r := strings.NewReader("hello")
	if Reader(r) != io.Reader(r) {
		t.Fatal("disabled Reader must return its argument unchanged")
	}
}

func TestCompileFaults(t *testing.T) {
	defer Disable()
	Enable(Config{CompileErr: true})
	if err := Compile(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	Enable(Config{CompilePanic: true})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CompilePanic did not panic")
			}
		}()
		Compile()
	}()
	Enable(Config{CompileDelay: 10 * time.Millisecond})
	start := time.Now()
	if err := Compile(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("CompileDelay did not delay")
	}
}

func TestReaderFaults(t *testing.T) {
	defer Disable()
	Enable(Config{ReadErrAfter: 4})
	fr := Reader(strings.NewReader("0123456789"))
	buf := make([]byte, 4)
	if n, err := fr.Read(buf); n != 4 || err != nil {
		t.Fatalf("first read: n=%d err=%v", n, err)
	}
	if _, err := fr.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected read error, got %v", err)
	}
	// Delay-only wrapping still delivers all bytes.
	Enable(Config{ReadDelay: time.Millisecond})
	all, err := io.ReadAll(Reader(strings.NewReader("abc")))
	if err != nil || string(all) != "abc" {
		t.Fatalf("delayed read: %q %v", all, err)
	}
}

func TestParse(t *testing.T) {
	c, err := Parse("compile-panic, read-err-after=1024, read-delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if !c.CompilePanic || c.ReadErrAfter != 1024 || c.ReadDelay != 5*time.Millisecond {
		t.Fatalf("parsed wrong: %+v", c)
	}
	if c, err := Parse(""); err != nil || c != (Config{}) {
		t.Fatalf("empty spec: %+v %v", c, err)
	}
	for _, bad := range []string{"wat", "compile-delay", "read-err-after=-1", "read-err-after=x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
