package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestDisabledIsTransparent(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("enabled after Disable")
	}
	if err := Compile(); err != nil {
		t.Fatalf("disabled Compile: %v", err)
	}
	r := strings.NewReader("hello")
	if Reader(r) != io.Reader(r) {
		t.Fatal("disabled Reader must return its argument unchanged")
	}
}

func TestCompileFaults(t *testing.T) {
	defer Disable()
	Enable(Config{CompileErr: true})
	if err := Compile(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	Enable(Config{CompilePanic: true})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CompilePanic did not panic")
			}
		}()
		Compile()
	}()
	Enable(Config{CompileDelay: 10 * time.Millisecond})
	start := time.Now()
	if err := Compile(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("CompileDelay did not delay")
	}
}

func TestReaderFaults(t *testing.T) {
	defer Disable()
	Enable(Config{ReadErrAfter: 4})
	fr := Reader(strings.NewReader("0123456789"))
	buf := make([]byte, 4)
	if n, err := fr.Read(buf); n != 4 || err != nil {
		t.Fatalf("first read: n=%d err=%v", n, err)
	}
	if _, err := fr.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected read error, got %v", err)
	}
	// Delay-only wrapping still delivers all bytes.
	Enable(Config{ReadDelay: time.Millisecond})
	all, err := io.ReadAll(Reader(strings.NewReader("abc")))
	if err != nil || string(all) != "abc" {
		t.Fatalf("delayed read: %q %v", all, err)
	}
}

func TestParse(t *testing.T) {
	c, err := Parse("compile-panic, read-err-after=1024, read-delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if !c.CompilePanic || c.ReadErrAfter != 1024 || c.ReadDelay != 5*time.Millisecond {
		t.Fatalf("parsed wrong: %+v", c)
	}
	if c, err := Parse(""); err != nil || c != (Config{}) {
		t.Fatalf("empty spec: %+v %v", c, err)
	}
	for _, bad := range []string{"wat", "compile-delay", "read-err-after=-1", "read-err-after=x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestPeerTransportBlackhole(t *testing.T) {
	defer Disable()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	client := &http.Client{Transport: PeerTransport(nil)}

	// No fault armed: transparent.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	Enable(Config{PeerBlackhole: true})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("blackholed request succeeded")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("blackhole returned before the caller's deadline")
	}
}

func TestPeerTransportBlackholeAutoHeals(t *testing.T) {
	defer Disable()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	client := &http.Client{Transport: PeerTransport(nil)}

	Enable(Config{PeerBlackhole: true, PeerBlackholeFor: 30 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if _, err := client.Do(req); !errors.Is(err, ErrInjected) {
		t.Fatalf("want blackhole during window, got %v", err)
	}
	cancel()

	time.Sleep(40 * time.Millisecond)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("request after auto-heal horizon: %v", err)
	}
	resp.Body.Close()
}

func TestPeerTransportSlow(t *testing.T) {
	defer Disable()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	client := &http.Client{Transport: PeerTransport(nil)}

	Enable(Config{PeerSlow: 30 * time.Millisecond})
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("peer-slow did not delay the request")
	}

	// A deadline shorter than the delay cuts the wait and fails injected.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if _, err := client.Do(req); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected on slow+deadline, got %v", err)
	}
}

func TestPeerTransportFlap(t *testing.T) {
	defer Disable()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	client := &http.Client{Transport: PeerTransport(nil)}

	Enable(Config{PeerFlap: 40 * time.Millisecond})
	// First window is a blackhole.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if _, err := client.Do(req); !errors.Is(err, ErrInjected) {
		t.Fatalf("want blackhole in first flap window, got %v", err)
	}
	cancel()
	// Second window is healthy.
	time.Sleep(35 * time.Millisecond)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("request in healthy flap window: %v", err)
	}
	resp.Body.Close()
}

func TestDiskWriterFaults(t *testing.T) {
	defer Disable()

	// Disabled: returns the writer unchanged.
	Disable()
	var sink bytes.Buffer
	if DiskWriter(&sink) != io.Writer(&sink) {
		t.Fatal("disabled DiskWriter must return its argument unchanged")
	}

	Enable(Config{DiskErr: true})
	if _, err := DiskWriter(&sink).Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("disk-err: want ErrInjected, got %v", err)
	}

	Enable(Config{DiskFull: true})
	_, err := DiskWriter(&sink).Write([]byte("x"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("disk-full: want ErrInjected wrapping ENOSPC, got %v", err)
	}

	// Partial write: exactly N bytes land, then every write fails.
	Enable(Config{DiskErrAfter: 4})
	sink.Reset()
	w := DiskWriter(&sink)
	n, err := w.Write([]byte("0123456789"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("disk-err-after: n=%d err=%v, want 4 bytes then injected error", n, err)
	}
	if sink.String() != "0123" {
		t.Fatalf("partial write delivered %q, want %q", sink.String(), "0123")
	}
	if _, err := w.Write([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write past fault boundary: %v", err)
	}
}

func TestParsePeerAndDiskDirectives(t *testing.T) {
	c, err := Parse("peer-blackhole, disk-err, disk-full, peer-slow=200ms, peer-flap=2s, disk-err-after=512")
	if err != nil {
		t.Fatal(err)
	}
	if !c.PeerBlackhole || !c.DiskErr || !c.DiskFull ||
		c.PeerSlow != 200*time.Millisecond || c.PeerFlap != 2*time.Second || c.DiskErrAfter != 512 {
		t.Fatalf("parsed wrong: %+v", c)
	}
	c, err = Parse("peer-blackhole-for=10s")
	if err != nil {
		t.Fatal(err)
	}
	if !c.PeerBlackhole || c.PeerBlackholeFor != 10*time.Second {
		t.Fatalf("peer-blackhole-for must imply peer-blackhole: %+v", c)
	}
	for _, bad := range []string{"peer-slow", "peer-flap=x", "disk-err-after=0", "peer-blackhole-for"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
