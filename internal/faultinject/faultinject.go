// Package faultinject is the chaos-engineering seam of the cast pipeline:
// a process-global, atomically swapped fault configuration that the
// registry and server consult at a handful of choke points (schema-pair
// compiles, document-body reads). When disabled — the default, and the only
// state production ever runs in — every hook is one atomic pointer load
// that returns immediately, so the hot path pays nothing for the seam.
//
// Faults are enabled either by tests (Enable/Disable) or by the castd
// -fault-inject flag (Parse), which exists so chaos smoke jobs can exercise
// the daemon's containment story end to end: injected compile panics must
// surface as structured 500s with the poisoned registry entry evicted,
// failing or stalling readers must fail only their own request, and
// injected delays must never outlive the request deadline.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Config selects which faults fire. The zero value injects nothing.
type Config struct {
	// CompileDelay stalls every schema-pair compile (singleflight waiters
	// pile up behind it — the coalesce path under load).
	CompileDelay time.Duration
	// CompileErr fails every compile with ErrInjected.
	CompileErr bool
	// CompilePanic panics inside every compile; the registry must recover,
	// deliver the error to coalesced waiters and evict the poisoned entry.
	CompilePanic bool
	// ReadDelay stalls every document-body read (a slow client).
	ReadDelay time.Duration
	// ReadErrAfter fails document-body reads with ErrInjected once this many
	// bytes have been delivered (0 disables read faults).
	ReadErrAfter int64
	// OTLPFail makes the first N OTLP export sends fail as if the collector
	// answered 503 with a Retry-After, then lets traffic through — the storm
	// that proves the exporter's backoff and recovery without a flaky
	// network dependency in CI.
	OTLPFail int64
}

// ErrInjected marks every error this package fabricates, so tests and
// handlers can tell injected faults from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// active is nil when injection is off (the steady state).
var active atomic.Pointer[Config]

// otlpRemaining counts down the OTLP sends still to be failed; it is
// (re)armed by Enable and consumed by OTLPSend.
var otlpRemaining atomic.Int64

// Enable installs a fault configuration process-wide.
func Enable(c Config) {
	otlpRemaining.Store(c.OTLPFail)
	active.Store(&c)
}

// Disable turns all fault injection off.
func Disable() {
	active.Store(nil)
	otlpRemaining.Store(0)
}

// Enabled reports whether any fault configuration is installed.
func Enabled() bool { return active.Load() != nil }

// Compile fires the compile-stage faults: it applies the configured delay,
// then errors or panics per the configuration. The registry calls it at the
// top of every schema-pair compile.
func Compile() error {
	c := active.Load()
	if c == nil {
		return nil
	}
	if c.CompileDelay > 0 {
		time.Sleep(c.CompileDelay)
	}
	if c.CompilePanic {
		panic("faultinject: injected compile panic")
	}
	if c.CompileErr {
		return fmt.Errorf("compile failed: %w", ErrInjected)
	}
	return nil
}

// Reader wraps a document-body reader with the configured read faults; it
// returns r unchanged when no read fault is installed, so the undisturbed
// path allocates nothing.
func Reader(r io.Reader) io.Reader {
	c := active.Load()
	if c == nil || (c.ReadDelay == 0 && c.ReadErrAfter == 0) {
		return r
	}
	return &faultReader{r: r, delay: c.ReadDelay, errAfter: c.ReadErrAfter}
}

type faultReader struct {
	r        io.Reader
	delay    time.Duration
	errAfter int64 // 0 = never error
	n        int64
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if fr.delay > 0 {
		time.Sleep(fr.delay)
	}
	if fr.errAfter > 0 {
		if fr.n >= fr.errAfter {
			return 0, fmt.Errorf("read failed after %d bytes: %w", fr.n, ErrInjected)
		}
		// Cap the read at the fault boundary: exactly errAfter bytes are
		// delivered before the failure, however large the caller's buffer.
		if rem := fr.errAfter - fr.n; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := fr.r.Read(p)
	fr.n += int64(n)
	return n, err
}

// OTLPSend fires the export-stage fault: while the countdown armed by
// Enable is positive it consumes one slot and reports (true, retryAfter),
// telling the exporter to treat the send as a 503 carrying that
// Retry-After. The exporter calls it once per HTTP attempt.
func OTLPSend() (fail bool, retryAfter time.Duration) {
	if active.Load() == nil {
		return false, 0
	}
	for {
		n := otlpRemaining.Load()
		if n <= 0 {
			return false, 0
		}
		if otlpRemaining.CompareAndSwap(n, n-1) {
			return true, 10 * time.Millisecond
		}
	}
}

// Parse decodes a -fault-inject flag value: a comma-separated list of
// directives, e.g. "compile-panic", "compile-err", "compile-delay=50ms",
// "read-delay=10ms", "read-err-after=1024", "otlp-fail=2". An empty spec
// is the zero Config.
func Parse(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, hasVal := strings.Cut(strings.TrimSpace(part), "=")
		switch key {
		case "compile-panic":
			c.CompilePanic = true
		case "compile-err":
			c.CompileErr = true
		case "compile-delay", "read-delay":
			if !hasVal {
				return Config{}, fmt.Errorf("faultinject: %s needs a duration value", key)
			}
			d, err := time.ParseDuration(val)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: %s: %w", key, err)
			}
			if key == "compile-delay" {
				c.CompileDelay = d
			} else {
				c.ReadDelay = d
			}
		case "read-err-after":
			if !hasVal {
				return Config{}, fmt.Errorf("faultinject: read-err-after needs a byte count")
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("faultinject: read-err-after: want a positive integer, got %q", val)
			}
			c.ReadErrAfter = n
		case "otlp-fail":
			if !hasVal {
				return Config{}, fmt.Errorf("faultinject: otlp-fail needs a send count")
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("faultinject: otlp-fail: want a positive integer, got %q", val)
			}
			c.OTLPFail = n
		default:
			return Config{}, fmt.Errorf("faultinject: unknown directive %q", key)
		}
	}
	return c, nil
}
