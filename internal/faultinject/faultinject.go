// Package faultinject is the chaos-engineering seam of the cast pipeline:
// a process-global, atomically swapped fault configuration that the
// registry and server consult at a handful of choke points (schema-pair
// compiles, document-body reads). When disabled — the default, and the only
// state production ever runs in — every hook is one atomic pointer load
// that returns immediately, so the hot path pays nothing for the seam.
//
// Faults are enabled either by tests (Enable/Disable) or by the castd
// -fault-inject flag (Parse), which exists so chaos smoke jobs can exercise
// the daemon's containment story end to end: injected compile panics must
// surface as structured 500s with the poisoned registry entry evicted,
// failing or stalling readers must fail only their own request, and
// injected delays must never outlive the request deadline.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Config selects which faults fire. The zero value injects nothing.
type Config struct {
	// CompileDelay stalls every schema-pair compile (singleflight waiters
	// pile up behind it — the coalesce path under load).
	CompileDelay time.Duration
	// CompileErr fails every compile with ErrInjected.
	CompileErr bool
	// CompilePanic panics inside every compile; the registry must recover,
	// deliver the error to coalesced waiters and evict the poisoned entry.
	CompilePanic bool
	// ReadDelay stalls every document-body read (a slow client).
	ReadDelay time.Duration
	// ReadErrAfter fails document-body reads with ErrInjected once this many
	// bytes have been delivered (0 disables read faults).
	ReadErrAfter int64
	// OTLPFail makes the first N OTLP export sends fail as if the collector
	// answered 503 with a Retry-After, then lets traffic through — the storm
	// that proves the exporter's backoff and recovery without a flaky
	// network dependency in CI.
	OTLPFail int64
	// PeerBlackhole drops every outbound peer request (artifact fetches,
	// proxies, health probes): the request blocks until its context
	// expires, then fails with ErrInjected — a network partition, not a
	// fast refusal.
	PeerBlackhole bool
	// PeerBlackholeFor bounds PeerBlackhole: the partition heals by
	// itself this long after Enable. Zero means the blackhole lasts
	// until Disable. This exists for CI smokes, where the flag cannot be
	// flipped at runtime.
	PeerBlackholeFor time.Duration
	// PeerSlow delays every outbound peer request by this much before
	// letting it through (a browning-out peer rather than a dead one).
	PeerSlow time.Duration
	// PeerFlap alternates blackhole/healthy windows of this period — the
	// flapping peer that opens and re-opens breakers.
	PeerFlap time.Duration
	// DiskErr fails every artifact-store write immediately.
	DiskErr bool
	// DiskErrAfter fails each artifact-store write once this many bytes
	// were accepted — the torn partial write (0 disables).
	DiskErrAfter int64
	// DiskFull fails artifact-store writes with an ENOSPC-wrapping error,
	// which the store must recognize and degrade to memory-only mode.
	DiskFull bool
}

// ErrInjected marks every error this package fabricates, so tests and
// handlers can tell injected faults from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// active is nil when injection is off (the steady state).
var active atomic.Pointer[Config]

// otlpRemaining counts down the OTLP sends still to be failed; it is
// (re)armed by Enable and consumed by OTLPSend.
var otlpRemaining atomic.Int64

// armedAt records when Enable installed the current config (unix nanos);
// the time base for PeerBlackholeFor auto-healing and PeerFlap windows.
var armedAt atomic.Int64

// Enable installs a fault configuration process-wide.
func Enable(c Config) {
	otlpRemaining.Store(c.OTLPFail)
	armedAt.Store(time.Now().UnixNano())
	active.Store(&c)
}

// Disable turns all fault injection off.
func Disable() {
	active.Store(nil)
	otlpRemaining.Store(0)
}

// Enabled reports whether any fault configuration is installed.
func Enabled() bool { return active.Load() != nil }

// Compile fires the compile-stage faults: it applies the configured delay,
// then errors or panics per the configuration. The registry calls it at the
// top of every schema-pair compile.
func Compile() error {
	c := active.Load()
	if c == nil {
		return nil
	}
	if c.CompileDelay > 0 {
		time.Sleep(c.CompileDelay)
	}
	if c.CompilePanic {
		panic("faultinject: injected compile panic")
	}
	if c.CompileErr {
		return fmt.Errorf("compile failed: %w", ErrInjected)
	}
	return nil
}

// Reader wraps a document-body reader with the configured read faults; it
// returns r unchanged when no read fault is installed, so the undisturbed
// path allocates nothing.
func Reader(r io.Reader) io.Reader {
	c := active.Load()
	if c == nil || (c.ReadDelay == 0 && c.ReadErrAfter == 0) {
		return r
	}
	return &faultReader{r: r, delay: c.ReadDelay, errAfter: c.ReadErrAfter}
}

type faultReader struct {
	r        io.Reader
	delay    time.Duration
	errAfter int64 // 0 = never error
	n        int64
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if fr.delay > 0 {
		time.Sleep(fr.delay)
	}
	if fr.errAfter > 0 {
		if fr.n >= fr.errAfter {
			return 0, fmt.Errorf("read failed after %d bytes: %w", fr.n, ErrInjected)
		}
		// Cap the read at the fault boundary: exactly errAfter bytes are
		// delivered before the failure, however large the caller's buffer.
		if rem := fr.errAfter - fr.n; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := fr.r.Read(p)
	fr.n += int64(n)
	return n, err
}

// OTLPSend fires the export-stage fault: while the countdown armed by
// Enable is positive it consumes one slot and reports (true, retryAfter),
// telling the exporter to treat the send as a 503 carrying that
// Retry-After. The exporter calls it once per HTTP attempt.
func OTLPSend() (fail bool, retryAfter time.Duration) {
	if active.Load() == nil {
		return false, 0
	}
	for {
		n := otlpRemaining.Load()
		if n <= 0 {
			return false, 0
		}
		if otlpRemaining.CompareAndSwap(n, n-1) {
			return true, 10 * time.Millisecond
		}
	}
}

// peerPartitioned reports whether outbound peer traffic is currently cut,
// combining the static blackhole (with its optional auto-heal horizon) and
// the flap schedule.
func peerPartitioned(c *Config) bool {
	now := time.Now().UnixNano()
	if c.PeerBlackhole {
		if c.PeerBlackholeFor <= 0 {
			return true
		}
		if now-armedAt.Load() < int64(c.PeerBlackholeFor) {
			return true
		}
	}
	if c.PeerFlap > 0 {
		// Windows alternate starting with a blackhole window at arm time,
		// so a flap fault disturbs traffic immediately.
		window := (now - armedAt.Load()) / int64(c.PeerFlap)
		return window%2 == 0
	}
	return false
}

// PeerTransport wraps an http.RoundTripper with the peer-stage faults. It
// is installed once on the cluster's HTTP client (shared by artifact
// fetches, proxies, and the health prober — a partition cuts probes too);
// when no peer fault is armed each request costs one atomic load.
func PeerTransport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &peerTransport{base: base}
}

type peerTransport struct {
	base http.RoundTripper
}

func (t *peerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c := active.Load()
	if c == nil {
		return t.base.RoundTrip(req)
	}
	if peerPartitioned(c) {
		// A partition doesn't refuse fast — it swallows packets until
		// the caller's deadline gives up.
		<-req.Context().Done()
		return nil, fmt.Errorf("peer blackhole: %w (%w)", ErrInjected, req.Context().Err())
	}
	if c.PeerSlow > 0 {
		select {
		case <-time.After(c.PeerSlow):
		case <-req.Context().Done():
			return nil, fmt.Errorf("peer slow: %w (%w)", ErrInjected, req.Context().Err())
		}
	}
	return t.base.RoundTrip(req)
}

// DiskWriter wraps an artifact-store writer with the disk-stage faults;
// it returns w unchanged when no disk fault is armed. disk-err-after
// counts bytes per wrapped writer (per file), so a faulted Put leaves a
// genuine partial temp file behind.
func DiskWriter(w io.Writer) io.Writer {
	c := active.Load()
	if c == nil || (!c.DiskErr && !c.DiskFull && c.DiskErrAfter == 0) {
		return w
	}
	return &diskWriter{w: w, c: c}
}

type diskWriter struct {
	w io.Writer
	c *Config
	n int64
}

func (dw *diskWriter) Write(p []byte) (int, error) {
	switch {
	case dw.c.DiskFull:
		return 0, fmt.Errorf("disk full: %w: %w", syscall.ENOSPC, ErrInjected)
	case dw.c.DiskErr:
		return 0, fmt.Errorf("disk write failed: %w", ErrInjected)
	case dw.c.DiskErrAfter > 0:
		if dw.n >= dw.c.DiskErrAfter {
			return 0, fmt.Errorf("disk write failed after %d bytes: %w", dw.n, ErrInjected)
		}
		if rem := dw.c.DiskErrAfter - dw.n; int64(len(p)) > rem {
			// Accept exactly the fault boundary, then fail the next call:
			// a short write with an error, like a real full disk.
			n, _ := dw.w.Write(p[:rem])
			dw.n += int64(n)
			return n, fmt.Errorf("disk write failed after %d bytes: %w", dw.n, ErrInjected)
		}
	}
	n, err := dw.w.Write(p)
	dw.n += int64(n)
	return n, err
}

// Parse decodes a -fault-inject flag value: a comma-separated list of
// directives, e.g. "compile-panic", "compile-err", "compile-delay=50ms",
// "read-delay=10ms", "read-err-after=1024", "otlp-fail=2",
// "peer-blackhole", "peer-blackhole-for=10s", "peer-slow=200ms",
// "peer-flap=2s", "disk-err", "disk-err-after=512", "disk-full". An empty
// spec is the zero Config.
func Parse(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, hasVal := strings.Cut(strings.TrimSpace(part), "=")
		switch key {
		case "compile-panic":
			c.CompilePanic = true
		case "compile-err":
			c.CompileErr = true
		case "peer-blackhole":
			c.PeerBlackhole = true
		case "disk-err":
			c.DiskErr = true
		case "disk-full":
			c.DiskFull = true
		case "compile-delay", "read-delay", "peer-blackhole-for", "peer-slow", "peer-flap":
			if !hasVal {
				return Config{}, fmt.Errorf("faultinject: %s needs a duration value", key)
			}
			d, err := time.ParseDuration(val)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: %s: %w", key, err)
			}
			switch key {
			case "compile-delay":
				c.CompileDelay = d
			case "read-delay":
				c.ReadDelay = d
			case "peer-blackhole-for":
				c.PeerBlackhole = true
				c.PeerBlackholeFor = d
			case "peer-slow":
				c.PeerSlow = d
			case "peer-flap":
				c.PeerFlap = d
			}
		case "read-err-after", "disk-err-after":
			if !hasVal {
				return Config{}, fmt.Errorf("faultinject: %s needs a byte count", key)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("faultinject: %s: want a positive integer, got %q", key, val)
			}
			if key == "read-err-after" {
				c.ReadErrAfter = n
			} else {
				c.DiskErrAfter = n
			}
		case "otlp-fail":
			if !hasVal {
				return Config{}, fmt.Errorf("faultinject: otlp-fail needs a send count")
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("faultinject: otlp-fail: want a positive integer, got %q", val)
			}
			c.OTLPFail = n
		default:
			return Config{}, fmt.Errorf("faultinject: unknown directive %q", key)
		}
	}
	return c, nil
}
