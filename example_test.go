package revalidate_test

import (
	"fmt"

	revalidate "repro"
)

const exampleSourceXSD = `
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="po" type="POv1"/>
  <xsd:complexType name="POv1">
    <xsd:sequence>
      <xsd:element name="ship" type="xsd:string"/>
      <xsd:element name="bill" type="xsd:string" minOccurs="0"/>
      <xsd:element name="qty" type="Qty"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:simpleType name="Qty">
    <xsd:restriction base="xsd:positiveInteger"><xsd:maxExclusive value="200"/></xsd:restriction>
  </xsd:simpleType>
</xsd:schema>`

const exampleTargetXSD = `
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="po" type="POv2"/>
  <xsd:complexType name="POv2">
    <xsd:sequence>
      <xsd:element name="ship" type="xsd:string"/>
      <xsd:element name="bill" type="xsd:string"/>
      <xsd:element name="qty" type="Qty"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:simpleType name="Qty">
    <xsd:restriction base="xsd:positiveInteger"><xsd:maxExclusive value="100"/></xsd:restriction>
  </xsd:simpleType>
</xsd:schema>`

// The basic schema cast: decide validity under a new schema using knowledge
// of conformance to the old one.
func ExampleNewCaster() {
	u := revalidate.NewUniverse()
	src, _ := u.LoadXSDString(exampleSourceXSD)
	dst, _ := u.LoadXSDString(exampleTargetXSD)
	caster, _ := revalidate.NewCaster(src, dst)

	good, _ := revalidate.ParseDocumentString(
		`<po><ship>a</ship><bill>b</bill><qty>42</qty></po>`)
	fmt.Println("with bill:", caster.Validate(good) == nil)

	bad, _ := revalidate.ParseDocumentString(
		`<po><ship>a</ship><qty>42</qty></po>`)
	fmt.Println("without bill:", caster.Validate(bad) == nil)
	// Output:
	// with bill: true
	// without bill: false
}

// Incremental revalidation after edits: only the touched region is
// re-examined.
func ExampleCaster_ValidateModified() {
	u := revalidate.NewUniverse()
	src, _ := u.LoadXSDString(exampleSourceXSD)
	caster, _ := revalidate.NewCaster(src, src) // same-schema revalidation

	doc, _ := revalidate.ParseDocumentString(
		`<po><ship>a</ship><qty>42</qty></po>`)
	es := doc.Edit()
	qty, _ := doc.Root().First("qty")
	_ = es.SetValue(qty, "500") // violates maxExclusive=200
	err := caster.ValidateModified(doc, es.Done())
	fmt.Println("edit accepted:", err == nil)
	// Output:
	// edit accepted: false
}

// The string-level immediate decision automaton decides as early as
// possible — here after two of three symbols.
func ExampleNewStringCaster() {
	sc, _ := revalidate.NewStringCaster(
		"ship, bill?, items", // source content model
		"ship, bill, items")  // target content model
	res, _ := sc.Validate([]string{"ship", "bill", "items"})
	fmt.Printf("accepted=%v after %d of 3 symbols\n", res.Accepted, res.Scanned)
	// Output:
	// accepted=true after 2 of 3 symbols
}

// Automatic correction: the repairer inserts the missing mandatory element
// with minimal synthesized content.
func ExampleNewRepairer() {
	u := revalidate.NewUniverse()
	src, _ := u.LoadXSDString(exampleSourceXSD)
	dst, _ := u.LoadXSDString(exampleTargetXSD)
	repairer, _ := revalidate.NewRepairer(src, dst)

	doc, _ := revalidate.ParseDocumentString(
		`<po><ship>a</ship><qty>150</qty></po>`)
	_, report, _ := repairer.Repair(doc)
	fmt.Printf("inserts=%d valueFixes=%d\n", report.Inserts, report.ValueFixes)
	fmt.Println("now valid:", dst.Validate(doc) == nil)
	// Output:
	// inserts=1 valueFixes=1
	// now valid: true
}
