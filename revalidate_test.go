package revalidate

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/wgen"
)

// loadPaperPair loads the Figure 1a (source) and Figure 2 (target) schemas
// into one universe.
func loadPaperPair(t *testing.T) (*Universe, *Schema, *Schema) {
	t.Helper()
	u := NewUniverse()
	src, err := u.LoadXSDString(wgen.Figure2XSD(true, 100))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		t.Fatal(err)
	}
	return u, src, dst
}

func poDocXML(items int, bill bool) string {
	doc := wgen.PODocument(wgen.PODocOptions{Items: items, IncludeBillTo: bill, Seed: 11})
	return string(wgen.POXMLBytes(doc))
}

func TestCasterEndToEnd(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	caster, err := NewCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocumentString(poDocXML(20, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Validate(doc); err != nil {
		t.Fatalf("doc should be source-valid: %v", err)
	}
	if err := caster.Validate(doc); err != nil {
		t.Fatalf("cast should pass: %v", err)
	}
	st, err := caster.ValidateStats(doc)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesVisited() > 4 || st.SubsumedSkips == 0 {
		t.Fatalf("expected constant work with skips, got %+v", st)
	}

	noBill, _ := ParseDocumentString(poDocXML(20, false))
	if err := caster.Validate(noBill); err == nil {
		t.Fatal("billTo-less doc must fail the cast")
	}
	if !strings.Contains(caster.Validate(noBill).Error(), "purchaseOrder") {
		t.Fatal("error should locate the failure")
	}
}

func TestCasterVsFullValidation(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	caster, _ := NewCaster(src, dst)
	doc, _ := ParseDocumentString(poDocXML(100, true))
	castStats, err := caster.ValidateStats(doc)
	if err != nil {
		t.Fatal(err)
	}
	fullStats, err := dst.ValidateFull(doc)
	if err != nil {
		t.Fatal(err)
	}
	if castStats.NodesVisited() >= fullStats.NodesVisited() {
		t.Fatalf("cast (%d nodes) should beat full validation (%d nodes)",
			castStats.NodesVisited(), fullStats.NodesVisited())
	}
}

func TestCasterOptions(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	for _, opts := range [][]CasterOption{
		{WithoutContentIDA()},
		{WithoutRelations()},
		{WithoutContentIDA(), WithoutRelations()},
	} {
		caster, err := NewCaster(src, dst, opts...)
		if err != nil {
			t.Fatal(err)
		}
		doc, _ := ParseDocumentString(poDocXML(5, true))
		if err := caster.Validate(doc); err != nil {
			t.Fatalf("cast with options should still pass: %v", err)
		}
		bad, _ := ParseDocumentString(poDocXML(5, false))
		if err := caster.Validate(bad); err == nil {
			t.Fatal("cast with options should still reject")
		}
	}
}

func TestCrossUniverseRejected(t *testing.T) {
	u1 := NewUniverse()
	u2 := NewUniverse()
	s1, err := u1.LoadXSDString(wgen.Figure2XSD(true, 100))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := u2.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCaster(s1, s2); err == nil {
		t.Fatal("cross-universe caster must be rejected")
	}
}

func TestEditSessionRoundTrip(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	caster, _ := NewCaster(src, dst)

	// Document without billTo: source-valid, target-invalid. Insert one.
	doc, _ := ParseDocumentString(poDocXML(10, false))
	es := doc.Edit()
	bill := Element("billTo",
		Element("name", Text("Bob")),
		Element("street", Text("2 Oak Ave")),
		Element("city", Text("Old Town")),
		Element("state", Text("PA")),
		Element("zip", Text("95819")),
		Element("country", Text("US")),
	)
	shipTo, ok := doc.Root().First("shipTo")
	if !ok {
		t.Fatal("shipTo missing")
	}
	if err := es.InsertAfter(shipTo, bill); err != nil {
		t.Fatal(err)
	}
	changes := es.Done()
	if changes.Empty() || changes.Size() != 1 {
		t.Fatalf("change set wrong: %d", changes.Size())
	}
	if err := caster.ValidateModified(doc, changes); err != nil {
		t.Fatalf("after inserting billTo the cast should pass: %v", err)
	}
	// The serialized document now contains the new element.
	if !strings.Contains(doc.XML(), "<billTo>") {
		t.Fatal("serialization should include the insert")
	}
}

func TestEditSessionDeleteAndSetValue(t *testing.T) {
	u := NewUniverse()
	s, err := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		t.Fatal(err)
	}
	caster, _ := NewCaster(s, s) // incremental same-schema revalidation

	doc, _ := ParseDocumentString(poDocXML(30, true))
	es := doc.Edit()
	item5 := doc.Root().All("item")[5]
	qty, _ := item5.First("quantity")
	if err := es.SetValue(qty, "250"); err != nil {
		t.Fatal(err)
	}
	changes := es.Done()
	st, err := caster.ValidateModifiedStats(doc, changes)
	if err == nil {
		t.Fatal("quantity 250 must fail")
	}
	if st.NodesVisited() > 100 {
		t.Fatalf("work should be localized: %+v", st)
	}

	// Deleting the offending item heals the document.
	doc2, _ := ParseDocumentString(poDocXML(30, true))
	es2 := doc2.Edit()
	item := doc2.Root().All("item")[5]
	qty2, _ := item.First("quantity")
	if err := es2.SetValue(qty2, "250"); err != nil {
		t.Fatal(err)
	}
	if err := es2.Delete(item); err != nil {
		t.Fatal(err)
	}
	if err := caster.ValidateModified(doc2, es2.Done()); err != nil {
		t.Fatalf("after deleting the bad item the cast should pass: %v", err)
	}
	if strings.Contains(doc2.XML(), "250") {
		t.Fatal("deleted subtree must not serialize")
	}
}

// Regression test: SetValue after deleting the text child must skip the
// tombstone and insert a fresh text child, not edit the deleted node.
func TestSetValueAfterDeleteInsertsFreshText(t *testing.T) {
	u := NewUniverse()
	s, err := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		t.Fatal(err)
	}
	caster, err := NewCaster(s, s)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocumentString(poDocXML(10, true))
	if err != nil {
		t.Fatal(err)
	}
	es := doc.Edit()
	qty, ok := doc.Root().First("quantity")
	if !ok {
		t.Fatal("no quantity element")
	}
	if err := es.Delete(qty.Child(0)); err != nil {
		t.Fatal(err)
	}
	if err := es.SetValue(qty, "42"); err != nil {
		t.Fatalf("SetValue after delete should insert a fresh text child: %v", err)
	}
	if err := caster.ValidateModified(doc, es.Done()); err != nil {
		t.Fatalf("delete→SetValue document should revalidate: %v", err)
	}
	if !strings.Contains(doc.XML(), "<quantity>42</quantity>") {
		t.Fatal("post-edit serialization should carry the fresh text child")
	}
}

func TestValidateIndexed(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	if !src.IsDTD() || !dst.IsDTD() {
		t.Fatal("paper schemas are DTD-shaped")
	}
	caster, _ := NewCaster(src, dst)
	doc, _ := ParseDocumentString(poDocXML(50, true))
	idx := BuildIndex(doc)
	st, err := caster.ValidateIndexedStats(doc, idx)
	if err != nil {
		t.Fatalf("indexed cast should pass: %v", err)
	}
	if st.ElementsVisited > 3 {
		t.Fatalf("indexed cast should visit ~2 elements, got %+v", st)
	}
}

func TestSchemaBuilder(t *testing.T) {
	u := NewUniverse()
	s, err := u.NewSchema().
		SimpleType("Qty", Facets{Base: "positiveInteger", MaxExclusive: F(100)}).
		SimpleType("Str", Facets{Base: "string"}).
		ComplexType("Item", "productName, quantity", map[string]string{
			"productName": "Str", "quantity": "Qty",
		}).
		ComplexType("Items", "item*", map[string]string{"item": "Item"}).
		Root("items", "Items").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := ParseDocumentString(
		`<items><item><productName>W</productName><quantity>42</quantity></item></items>`)
	if err := s.Validate(doc); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	bad, _ := ParseDocumentString(
		`<items><item><productName>W</productName><quantity>100</quantity></item></items>`)
	if err := s.Validate(bad); err == nil {
		t.Fatal("quantity 100 must fail")
	}
}

func TestSchemaBuilderErrors(t *testing.T) {
	u := NewUniverse()
	if _, err := u.NewSchema().SimpleType("X", Facets{Base: "bogus"}).Build(); err == nil {
		t.Fatal("unknown base must fail")
	}
	if _, err := u.NewSchema().
		ComplexType("A", "b", map[string]string{"b": "Missing"}).
		Build(); err == nil {
		t.Fatal("undeclared child type must fail")
	}
	if _, err := u.NewSchema().
		ComplexType("A", "b(", nil).
		Build(); err == nil {
		t.Fatal("bad content model must fail")
	}
	if _, err := u.NewSchema().Root("a", "Missing").Build(); err == nil {
		t.Fatal("undeclared root type must fail")
	}
}

func TestLoadDTD(t *testing.T) {
	u := NewUniverse()
	s, err := u.LoadDTD(`
		<!ELEMENT note (to, body)>
		<!ELEMENT to (#PCDATA)>
		<!ELEMENT body (#PCDATA)>
	`, "note")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := ParseDocumentString(`<note><to>Alice</to><body>hi</body></note>`)
	if err := s.Validate(doc); err != nil {
		t.Fatal(err)
	}
}

func TestStringCaster(t *testing.T) {
	sc, err := NewStringCaster("shipTo, billTo?, items", "shipTo, billTo, items")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Validate([]string{"shipTo", "billTo", "items"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || !res.Early || res.Scanned != 2 {
		t.Fatalf("expected early accept after 2 symbols: %+v", res)
	}
	res, err = sc.Validate([]string{"shipTo", "items"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("billTo-less sequence must be rejected")
	}
	if _, err := sc.Validate([]string{"bogus"}); err == nil {
		t.Fatal("unknown label must error")
	}
	if _, err := NewStringCaster("(", "a"); err == nil {
		t.Fatal("bad source expression must fail")
	}
	if _, err := NewStringCaster("a", "("); err == nil {
		t.Fatal("bad target expression must fail")
	}
}

func TestStringEditor(t *testing.T) {
	sc, err := NewStringCaster("x, y*", "x, y*")
	if err != nil {
		t.Fatal(err)
	}
	ed, err := sc.Edit([]string{"x", "y", "y", "y", "y", "y"})
	if err != nil {
		t.Fatal(err)
	}
	ed.Append("y")
	res := ed.Validate()
	if !res.Accepted || !res.Reversed {
		t.Fatalf("append should validate via reverse scan: %+v", res)
	}
	if got := ed.Current(); len(got) != 7 || got[6] != "y" {
		t.Fatalf("Current = %v", got)
	}
	ed.Delete(0)
	ed.Insert(0, "x")
	ed.Replace(1, "y")
	if !ed.Validate().Accepted {
		t.Fatal("rebuilt sequence should still validate")
	}
}

func TestDocumentNavigation(t *testing.T) {
	doc, err := ParseDocumentString(
		`<po id="7"><items><item><q>1</q></item><item><q>2</q></item></items></po>`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if root.Label() != "po" || !root.IsValid() {
		t.Fatal("root cursor wrong")
	}
	if v, ok := root.Attr("id"); !ok || v != "7" {
		t.Fatal("attr lookup wrong")
	}
	items := root.All("item")
	if len(items) != 2 {
		t.Fatalf("All(item) = %d", len(items))
	}
	q, ok := items[1].First("q")
	if !ok || q.Value() != "2" {
		t.Fatal("First/Value wrong")
	}
	if q.Path() != "/po/items/item[2]/q" {
		t.Fatalf("Path = %q", q.Path())
	}
	if q.Parent().Label() != "item" {
		t.Fatal("Parent wrong")
	}
	if doc.NodeCount() != 8 {
		t.Fatalf("NodeCount = %d, want 8", doc.NodeCount())
	}
	if _, ok := root.First("missing"); ok {
		t.Fatal("First of missing label should fail")
	}
	// Clone independence.
	clone := doc.Clone()
	es := clone.Edit()
	cq, _ := clone.Root().First("q")
	if err := es.SetText(cq.Child(0), "9"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(doc.XML(), "9") {
		t.Fatal("clone edits leaked into the original")
	}
}

func TestNewDocumentProgrammatic(t *testing.T) {
	doc := NewDocument(Element("a", Element("b", Text("v"))))
	if doc.XML() != "<a><b>v</b></a>" {
		t.Fatalf("XML = %q", doc.XML())
	}
	var sb strings.Builder
	if err := doc.WriteXML(&sb, "  "); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\n  <b>") {
		t.Fatalf("indentation missing: %q", sb.String())
	}
}

func TestSchemaIntrospection(t *testing.T) {
	_, src, _ := loadPaperPair(t)
	names := src.TypeNames()
	found := false
	for _, n := range names {
		if n == "USAddress" {
			found = true
		}
	}
	if !found {
		t.Fatalf("TypeNames missing USAddress: %v", names)
	}
	if !strings.Contains(src.String(), "shipTo, billTo?, items") {
		t.Fatalf("String() missing content model:\n%s", src.String())
	}
	if src.Universe() == nil {
		t.Fatal("Universe accessor broken")
	}
}

func TestRepairerPublicAPI(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	repairer, err := NewRepairer(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	caster, _ := NewCaster(src, dst)

	doc, _ := ParseDocumentString(poDocXML(10, false)) // missing billTo
	changes, report, err := repairer.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if report.Inserts != 1 || report.Total() != 1 {
		t.Fatalf("expected a single insert, got %+v", report)
	}
	if err := caster.ValidateModified(doc, changes); err != nil {
		t.Fatalf("repaired doc should validate incrementally: %v", err)
	}
	if err := dst.Validate(doc); err != nil {
		t.Fatalf("repaired doc should validate fully: %v", err)
	}
	// Valid documents pass through untouched.
	doc2, _ := ParseDocumentString(poDocXML(10, true))
	_, report2, err := repairer.Repair(doc2)
	if err != nil {
		t.Fatal(err)
	}
	if report2.Total() != 0 {
		t.Fatalf("valid doc should need no repair, got %+v", report2)
	}
	// Cross-universe rejection.
	other := NewUniverse()
	foreign, _ := other.LoadXSDString(wgen.Figure2XSD(false, 100))
	if _, err := NewRepairer(src, foreign); err == nil {
		t.Fatal("cross-universe repairer must be rejected")
	}
}

// Regression: schemas loaded into one universe at different times hold
// automata over different alphabet widths; the caster must reconcile them
// (found by schema-pair fuzzing).
func TestCasterAcrossGrowingAlphabet(t *testing.T) {
	u := NewUniverse()
	src, err := u.NewSchema().
		SimpleType("S", Facets{Base: "string"}).
		ComplexType("A", "x, y", map[string]string{"x": "S", "y": "S"}).
		Root("a", "A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// The second schema interns labels the first never saw.
	dst, err := u.NewSchema().
		SimpleType("S", Facets{Base: "string"}).
		ComplexType("A", "x, y, z?", map[string]string{"x": "S", "y": "S", "z": "S"}).
		Root("a", "A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	caster, err := NewCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := ParseDocumentString(`<a><x>1</x><y>2</y></a>`)
	if err := caster.Validate(doc); err != nil {
		t.Fatalf("cast across grown alphabet failed: %v", err)
	}
}

func TestStreamingPublicAPI(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	xml := poDocXML(50, true)

	// Full streaming validation.
	st, err := dst.ValidateStream(strings.NewReader(xml))
	if err != nil {
		t.Fatalf("streaming validation failed: %v", err)
	}
	if st.ElementsVisited == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if _, err := dst.ValidateStream(strings.NewReader(poDocXML(5, false))); err == nil {
		t.Fatal("invalid doc must fail")
	}

	// Streaming cast: experiment-1 shape — work constant, skimming heavy.
	sc, err := NewStreamCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := sc.Validate(strings.NewReader(xml))
	if err != nil {
		t.Fatalf("streaming cast failed: %v", err)
	}
	if cst.ElementsVisited > 4 || cst.ElementsSkimmed == 0 {
		t.Fatalf("expected constant processing with skimming: %+v", cst)
	}
	if _, err := sc.Validate(strings.NewReader(poDocXML(5, false))); err == nil {
		t.Fatal("invalid doc must fail the streaming cast")
	}

	// Cross-universe rejection.
	other := NewUniverse()
	foreign, _ := other.LoadXSDString(wgen.Figure2XSD(false, 100))
	if _, err := NewStreamCaster(src, foreign); err == nil {
		t.Fatal("cross-universe stream caster must be rejected")
	}
}

func TestValidateStreamContextGovernance(t *testing.T) {
	_, _, dst := loadPaperPair(t)
	xml := poDocXML(50, true)

	// The governed variant with generous limits agrees with ValidateStream.
	st, err := dst.ValidateStreamContext(context.Background(), strings.NewReader(xml),
		Limits{MaxDepth: 100, MaxElements: 100000})
	if err != nil {
		t.Fatalf("governed streaming validation failed: %v", err)
	}
	if st.ElementsVisited == 0 {
		t.Fatalf("stats empty: %+v", st)
	}

	// An element budget below the document size yields a LimitError.
	_, err = dst.ValidateStreamContext(context.Background(), strings.NewReader(xml),
		Limits{MaxElements: 10})
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "elements" {
		t.Fatalf("want elements LimitError, got %v", err)
	}

	// A depth cap of 1 rejects any nested document.
	_, err = dst.ValidateStreamContext(context.Background(), strings.NewReader(xml),
		Limits{MaxDepth: 1})
	if !errors.As(err, &le) || le.Kind != "depth" {
		t.Fatalf("want depth LimitError, got %v", err)
	}

	// A pre-canceled context stops the validation and surfaces the cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dst.ValidateStreamContext(ctx, strings.NewReader(strings.Repeat(" ", 100000)+xml), Limits{}); err == nil {
		t.Fatal("pre-canceled context must fail")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
}

func TestPublicSurfaceCompleteness(t *testing.T) {
	// Exercise the remaining public cursors and edit operations.
	u := NewUniverse()
	src, err := u.LoadXSD(strings.NewReader(wgen.Figure2XSD(true, 100)))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		t.Fatal(err)
	}
	caster, err := NewCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if caster.Source() != src || caster.Target() != dst {
		t.Fatal("caster accessors wrong")
	}

	doc, _ := ParseDocumentString(`<purchaseOrder><shipTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip><country>US</country></shipTo><items/></purchaseOrder>`)
	root := doc.Root()
	if root.IsText() {
		t.Fatal("root is an element")
	}
	if root.NumChildren() != 2 {
		t.Fatalf("NumChildren = %d", root.NumChildren())
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Label() != "shipTo" {
		t.Fatal("Children wrong")
	}
	if !strings.Contains(kids[0].String(), "<name>n</name>") {
		t.Fatalf("Elem.String = %q", kids[0].String())
	}

	// Edit: build billTo via InsertBefore/InsertFirstChild/AppendChild and
	// a Relabel, then cast-validate incrementally.
	es := doc.Edit()
	bill := Element("billToX")
	if err := es.InsertBefore(kids[1], bill); err != nil { // before items
		t.Fatal(err)
	}
	if err := es.Relabel(bill, "billTo"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"street", "city", "state", "country"} {
		if err := es.AppendChild(bill, Element(f, Text("v1"))); err != nil {
			t.Fatal(err)
		}
	}
	zipField := Element("zip", Text("12345"))
	if err := es.InsertBefore(bill.Children()[3], zipField); err != nil { // before country
		t.Fatal(err)
	}
	if err := es.InsertFirstChild(bill, Element("name", Text("first"))); err != nil {
		t.Fatal(err)
	}
	if es.Edits() != 8 {
		t.Fatalf("Edits = %d, want 8", es.Edits())
	}
	changes := es.Done()
	if err := caster.ValidateModified(doc, changes); err != nil {
		t.Fatalf("edited doc should cast-validate: %v", err)
	}
	// ValidateIndexed without stats.
	idx := BuildIndex(doc)
	if err := caster.ValidateIndexed(doc, idx); err != nil {
		t.Fatalf("indexed validation failed: %v", err)
	}
	// Negative indexed path, respecting the cast contract: a source-valid
	// document without billTo (optional in source, required in target).
	doc2 := doc.Clone()
	bill2, _ := doc2.Root().First("billTo")
	es2 := doc2.Edit()
	if err := es2.Delete(bill2); err != nil {
		t.Fatal(err)
	}
	_ = es2.Done()
	if err := src.Validate(doc2); err != nil {
		t.Fatalf("doc2 should stay source-valid: %v", err)
	}
	if err := caster.ValidateIndexed(doc2, BuildIndex(doc2)); err == nil {
		t.Fatal("missing billTo should fail indexed validation")
	}
}

// The Caster documents concurrency safety; exercise it under the race
// detector.
func TestCasterConcurrentUse(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	caster, _ := NewCaster(src, dst)
	sc, _ := NewStreamCaster(src, dst)
	xml := poDocXML(20, true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			doc, err := ParseDocumentString(xml)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				if err := caster.Validate(doc); err != nil {
					t.Error(err)
					return
				}
				if _, err := sc.Validate(strings.NewReader(xml)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

const catalogXSD = `
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="catalog" type="CatalogType">
    <xsd:key name="skuKey">
      <xsd:selector xpath="items/item"/>
      <xsd:field xpath="sku"/>
    </xsd:key>
    <xsd:keyref name="orderRef" refer="skuKey">
      <xsd:selector xpath="orders/order"/>
      <xsd:field xpath="itemSku"/>
    </xsd:keyref>
  </xsd:element>
  <xsd:complexType name="CatalogType">
    <xsd:sequence>
      <xsd:element name="items" type="ItemsType"/>
      <xsd:element name="orders" type="OrdersType"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="ItemsType">
    <xsd:sequence>
      <xsd:element name="item" type="ItemType" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="ItemType">
    <xsd:sequence>
      <xsd:element name="sku" type="xsd:string"/>
      <xsd:element name="name" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="OrdersType">
    <xsd:sequence>
      <xsd:element name="order" type="OrderType" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="OrderType">
    <xsd:sequence>
      <xsd:element name="itemSku" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`

const catalogDocXML = `
<catalog>
  <items>
    <item><sku>A1</sku><name>Widget</name></item>
    <item><sku>B2</sku><name>Gadget</name></item>
  </items>
  <orders>
    <order><itemSku>A1</itemSku></order>
  </orders>
</catalog>`

func TestIdentityConstraintsEndToEnd(t *testing.T) {
	u := NewUniverse()
	s, err := u.LoadXSDString(catalogXSD)
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasIdentityConstraints() {
		t.Fatal("constraints should be loaded from the XSD")
	}
	if got := s.IdentityConstraints(); len(got) != 2 || !strings.Contains(got[0], "skuKey") {
		t.Fatalf("IdentityConstraints = %v", got)
	}
	doc, err := ParseDocumentString(catalogDocXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(doc); err != nil {
		t.Fatalf("structurally valid: %v", err)
	}
	if err := s.ValidateIdentity(doc); err != nil {
		t.Fatalf("identity-valid: %v", err)
	}

	// Duplicate sku breaks the key.
	dup, _ := ParseDocumentString(strings.Replace(catalogDocXML, "B2", "A1", 1))
	if err := s.ValidateIdentity(dup); err == nil {
		t.Fatal("duplicate sku must fail")
	}
	// Dangling order reference breaks the keyref.
	dangling, _ := ParseDocumentString(strings.Replace(catalogDocXML, "<itemSku>A1<", "<itemSku>ZZ<", 1))
	if err := s.ValidateIdentity(dangling); err == nil {
		t.Fatal("dangling keyref must fail")
	}

	// Incremental: index once, edit, re-check only the touched scope.
	idx, err := s.BuildIdentityIndex(doc)
	if err != nil {
		t.Fatal(err)
	}
	es := doc.Edit()
	items, _ := doc.Root().First("items")
	if err := es.AppendChild(items, Element("item",
		Element("sku", Text("C3")), Element("name", Text("Sprocket")))); err != nil {
		t.Fatal(err)
	}
	changes := es.Done()
	if err := idx.ValidateModified(doc, changes); err != nil {
		t.Fatalf("fresh sku should pass: %v", err)
	}
	// Now add a duplicate.
	es2 := doc.Edit()
	if err := es2.AppendChild(items, Element("item",
		Element("sku", Text("A1")), Element("name", Text("Clone")))); err != nil {
		t.Fatal(err)
	}
	if err := idx.ValidateModified(doc, es2.Done()); err == nil {
		t.Fatal("duplicate sku must fail incrementally")
	}

	// Schemas without constraints behave gracefully.
	plain, _ := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if plain.HasIdentityConstraints() || plain.IdentityConstraints() != nil {
		t.Fatal("figure-2 schema has no constraints")
	}
	poDoc, _ := ParseDocumentString(poDocXML(2, true))
	if err := plain.ValidateIdentity(poDoc); err != nil {
		t.Fatal("no constraints → always valid")
	}
	if _, err := plain.BuildIdentityIndex(poDoc); err == nil {
		t.Fatal("index over constraint-less schema should error")
	}
}
