package revalidate

import (
	"fmt"

	"repro/internal/regexpsym"
	"repro/internal/schema"
)

// SchemaBuilder constructs abstract XML schemas programmatically, as an
// alternative to loading XSD or DTD text. Content models use the same
// expression syntax as StringCaster (`a, b?`, `(x | y)*`, `item{1,10}`,
// `EMPTY`).
//
//	b := u.NewSchema()
//	b.SimpleType("Qty", revalidate.Facets{Base: "positiveInteger", MaxExclusive: revalidate.F(100)})
//	b.ComplexType("Item", "productName, quantity", map[string]string{
//	    "productName": "string", "quantity": "Qty",
//	})
//	b.Root("item", "Item")
//	s, err := b.Build()
type SchemaBuilder struct {
	u    *Universe
	s    *schema.Schema
	errs []error
	// deferred child-type bindings, resolved at Build (so declaration
	// order does not matter).
	bindings []binding
	roots    []rootDecl
}

type binding struct {
	typeName string
	label    string
	childRef string
}

type rootDecl struct {
	label   string
	typeRef string
}

// NewSchema starts a schema builder in this universe.
func (u *Universe) NewSchema() *SchemaBuilder {
	return &SchemaBuilder{u: u, s: schema.New(u.alpha)}
}

// Facets declares a simple type. Base names the primitive value space
// ("string", "boolean", "decimal", "integer", "positiveInteger", "date",
// "anySimpleType"); the remaining fields are the optional constraining
// facets (use F for the numeric pointers).
type Facets struct {
	Base         string
	MinInclusive *float64
	MaxInclusive *float64
	MinExclusive *float64
	MaxExclusive *float64
	MinLength    int // ≤0 for unset (a 0-length minimum is vacuous)
	MaxLength    int // ≤0 for unset
	Enumeration  []string
}

// F returns a pointer to v, for the numeric facet fields.
func F(v float64) *float64 { return &v }

// SimpleType declares a facet-constrained simple type.
func (b *SchemaBuilder) SimpleType(name string, facets Facets) *SchemaBuilder {
	base, ok := schema.BaseKindByName(facets.Base)
	if facets.Base != "" && !ok {
		b.errs = append(b.errs, fmt.Errorf("revalidate: simple type %q: unknown base %q", name, facets.Base))
		return b
	}
	st := schema.NewSimpleType(base)
	st.MinInclusive = facets.MinInclusive
	st.MaxInclusive = facets.MaxInclusive
	st.MinExclusive = facets.MinExclusive
	st.MaxExclusive = facets.MaxExclusive
	if facets.MinLength > 0 {
		st.MinLength = facets.MinLength
	}
	if facets.MaxLength > 0 {
		st.MaxLength = facets.MaxLength
	} else {
		st.MaxLength = -1
	}
	st.Enumeration = append([]string(nil), facets.Enumeration...)
	if _, err := b.s.AddSimpleType(name, st); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// ComplexType declares a complex type with the given content-model
// expression; children maps each label used in the expression to the name
// of its type (which may be declared before or after this call).
func (b *SchemaBuilder) ComplexType(name, contentModel string, children map[string]string) *SchemaBuilder {
	expr, err := regexpsym.Parse(contentModel)
	if err != nil {
		b.errs = append(b.errs, fmt.Errorf("revalidate: complex type %q: %w", name, err))
		return b
	}
	if _, err := b.s.AddComplexType(name, expr); err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	for label, childRef := range children {
		b.bindings = append(b.bindings, binding{typeName: name, label: label, childRef: childRef})
	}
	return b
}

// Root declares that documents may be rooted at label, typed by typeRef.
func (b *SchemaBuilder) Root(label, typeRef string) *SchemaBuilder {
	b.roots = append(b.roots, rootDecl{label: label, typeRef: typeRef})
	return b
}

// Build resolves all references, compiles content models (checking the
// 1-unambiguity / UPA constraint), runs the productivity analysis, and
// returns the finished schema.
func (b *SchemaBuilder) Build() (*Schema, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, bind := range b.bindings {
		τ := b.s.TypeByName(bind.typeName)
		child := b.s.TypeByName(bind.childRef)
		if child == schema.NoType {
			return nil, fmt.Errorf("revalidate: type %q: label %q references undeclared type %q",
				bind.typeName, bind.label, bind.childRef)
		}
		if err := b.s.SetChildType(τ, bind.label, child); err != nil {
			return nil, err
		}
	}
	for _, r := range b.roots {
		τ := b.s.TypeByName(r.typeRef)
		if τ == schema.NoType {
			return nil, fmt.Errorf("revalidate: root %q references undeclared type %q", r.label, r.typeRef)
		}
		b.s.SetRoot(r.label, τ)
	}
	if err := b.s.Compile(); err != nil {
		return nil, err
	}
	return &Schema{u: b.u, s: b.s}, nil
}
