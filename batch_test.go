package revalidate_test

// Edge cases of the batch validation APIs: empty batches, single-item
// batches, worker counts exceeding the batch, and mid-stream reader
// failures that must stay isolated to their own slot.

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	revalidate "repro"
	"repro/internal/wgen"
)

func batchFixtures(t *testing.T) (*revalidate.Caster, *revalidate.StreamCaster, string) {
	t.Helper()
	u := revalidate.NewUniverse()
	src, err := u.LoadXSDString(wgen.Figure2XSD(true, 100))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		t.Fatal(err)
	}
	c, sc, err := revalidate.NewCasterPair(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	xml := string(wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 2, IncludeBillTo: true, Seed: 7})))
	return c, sc, xml
}

func TestValidateAllEdgeCases(t *testing.T) {
	c, _, xml := batchFixtures(t)
	doc, err := revalidate.ParseDocumentString(xml)
	if err != nil {
		t.Fatal(err)
	}
	// Empty batch: no verdicts, zero stats, any worker count.
	for _, workers := range []int{-1, 0, 1, 8} {
		errs, st := c.ValidateAll(nil, workers)
		if len(errs) != 0 || st != (revalidate.Stats{}) {
			t.Fatalf("empty batch (workers=%d): errs=%v stats=%+v", workers, errs, st)
		}
	}
	// Single document, workers exceeding the batch.
	errs, st := c.ValidateAll([]*revalidate.Document{doc}, 16)
	if len(errs) != 1 || errs[0] != nil {
		t.Fatalf("one-doc batch: %v", errs)
	}
	if st.ElementsVisited == 0 {
		t.Fatalf("one-doc batch reported no work: %+v", st)
	}
	// workers <= 0 clamps to one worker per CPU and still drains.
	docs := make([]*revalidate.Document, 5)
	for i := range docs {
		docs[i] = doc.Clone()
	}
	errs, _ = c.ValidateAll(docs, -3)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
	}
}

func TestStreamValidateAllEdgeCases(t *testing.T) {
	_, sc, xml := batchFixtures(t)
	for _, workers := range []int{-1, 0, 1, 8} {
		errs, st := sc.ValidateAll(nil, workers)
		if len(errs) != 0 || st != (revalidate.StreamStats{}) {
			t.Fatalf("empty batch (workers=%d): errs=%v stats=%+v", workers, errs, st)
		}
	}
	errs, st := sc.ValidateAll([]io.Reader{strings.NewReader(xml)}, 16)
	if len(errs) != 1 || errs[0] != nil {
		t.Fatalf("one-reader batch: %v", errs)
	}
	if st.ElementsVisited == 0 {
		t.Fatalf("one-reader batch reported no work: %+v", st)
	}
}

// failingReader yields its prefix, then fails with cause.
type failingReader struct {
	r     io.Reader
	cause error
}

func (f *failingReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if err == io.EOF {
		return n, f.cause
	}
	return n, err
}

// TestStreamBatchErrorIsolation feeds a batch where one reader dies
// mid-stream: only its own slot may fail, with the reader's error wrapped,
// and the sibling documents must validate normally.
func TestStreamBatchErrorIsolation(t *testing.T) {
	_, sc, xml := batchFixtures(t)
	boom := errors.New("boom: connection reset")
	rs := []io.Reader{
		strings.NewReader(xml),
		&failingReader{r: strings.NewReader(xml[:len(xml)/2]), cause: boom},
		strings.NewReader(xml),
	}
	for _, workers := range []int{1, 3} {
		// Fresh readers per run (they are consumed).
		rs[0] = strings.NewReader(xml)
		rs[1] = &failingReader{r: strings.NewReader(xml[:len(xml)/2]), cause: boom}
		rs[2] = strings.NewReader(xml)
		errs, _ := sc.ValidateAll(rs, workers)
		if errs[0] != nil || errs[2] != nil {
			t.Fatalf("workers=%d: sibling slots poisoned: %v / %v", workers, errs[0], errs[2])
		}
		if errs[1] == nil {
			t.Fatalf("workers=%d: failing reader's slot reported valid", workers)
		}
		if !errors.Is(errs[1], boom) {
			t.Fatalf("workers=%d: reader error not wrapped: %v", workers, errs[1])
		}
	}
}

func ExampleStreamCaster_ValidateAll() {
	u := revalidate.NewUniverse()
	src, _ := u.LoadXSDString(wgen.Figure2XSD(true, 100))
	dst, _ := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	_, sc, _ := revalidate.NewCasterPair(src, dst)
	with := string(wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 1, IncludeBillTo: true, Seed: 1})))
	without := string(wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 1, IncludeBillTo: false, Seed: 1})))
	errs, _ := sc.ValidateAll([]io.Reader{strings.NewReader(with), strings.NewReader(without)}, 2)
	fmt.Println(errs[0] == nil, errs[1] == nil)
	// Output: true false
}
