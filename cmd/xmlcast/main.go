// Command xmlcast validates an XML document against a target schema using
// knowledge of its conformance to a source schema (schema cast validation,
// EDBT'04). With only -target it performs a plain full validation.
//
// Usage:
//
//	xmlcast -target order-v2.xsd order.xml             # full validation
//	xmlcast -source v1.xsd -target v2.xsd order.xml    # schema cast
//	xmlcast -source v1.dtd -target v2.dtd -indexed order.xml
//	xmlcast -source v1.xsd -target v2.xsd -stream big.xml   # O(depth) memory
//	xmlcast -source v1.xsd -target v2.xsd -repair broken.xml > fixed.xml
//
// Schema format is inferred from the file extension (.xsd / .dtd) or, for
// other extensions, sniffed from the content. With -stats the work counters
// (nodes visited, automaton steps, subtrees skipped) are printed to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	revalidate "repro"
)

// Exit codes are a stable scripting contract (the castd smoke tests and
// shell pipelines branch on them): 0 the document is valid, 1 the
// document is invalid under the target schema, 2 usage or I/O error.
// Verdicts go to stdout; diagnostics and INVALID reasons go to stderr.
const (
	exitValid   = 0
	exitInvalid = 1
	exitUsage   = 2
)

func main() {
	var (
		sourcePath = flag.String("source", "", "source schema (the one the document is known to satisfy)")
		targetPath = flag.String("target", "", "target schema (required)")
		dtdRoot    = flag.String("dtd-root", "", "root element for DTD schemas without a DOCTYPE")
		indexed    = flag.Bool("indexed", false, "use the DTD label-index optimization (§3.4)")
		repairDoc  = flag.Bool("repair", false, "repair an invalid document and print the corrected XML to stdout")
		streaming  = flag.Bool("stream", false, "validate from the token stream without building a tree (O(depth) memory)")
		stats      = flag.Bool("stats", false, "print work statistics to stderr")
		explain    = flag.Bool("explain", false, "print the decision trace (skips, rejects, descends) to stderr; implies a schema cast")
		maxDepth   = flag.Int("max-depth", 0, "streaming: reject documents nested deeper than this (0 = unlimited)")
		maxElems   = flag.Int64("max-elements", 0, "streaming: reject documents with more elements than this (0 = unlimited)")
		timeout    = flag.Duration("timeout", 0, "streaming: abort validation after this duration (0 = none)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xmlcast [-source schema] -target schema [flags] document.xml\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *targetPath == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(exitUsage)
	}

	u := revalidate.NewUniverse()
	target, err := loadSchema(u, *targetPath, *dtdRoot)
	exitOn(err)
	docFile, err := os.Open(flag.Arg(0))
	exitOn(err)
	defer docFile.Close()

	if *streaming {
		lim := revalidate.Limits{MaxDepth: *maxDepth, MaxElements: *maxElems}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		runStreaming(ctx, u, target, *sourcePath, *dtdRoot, docFile, lim, *stats, *explain)
		return
	}
	doc, err := revalidate.ParseDocument(docFile)
	exitOn(err)

	if *sourcePath == "" {
		st, err := target.ValidateFull(doc)
		report("full validation", st, err, *stats)
		return
	}
	source, err := loadSchema(u, *sourcePath, *dtdRoot)
	exitOn(err)
	caster, err := revalidate.NewCaster(source, target)
	exitOn(err)

	if *repairDoc {
		repairer, err := revalidate.NewRepairer(source, target)
		exitOn(err)
		changes, rep, err := repairer.Repair(doc)
		exitOn(err)
		if err := caster.ValidateModified(doc, changes); err != nil {
			exitOn(fmt.Errorf("internal: repair left the document invalid: %w", err))
		}
		fmt.Fprintf(os.Stderr, "repaired with %d relabels, %d inserts, %d deletes, %d value fixes\n",
			rep.Relabels, rep.Inserts, rep.Deletes, rep.ValueFixes)
		exitOn(doc.WriteXML(os.Stdout, "  "))
		return
	}
	if *indexed {
		idx := revalidate.BuildIndex(doc)
		st, err := caster.ValidateIndexedStats(doc, idx)
		report("indexed schema cast", st, err, *stats)
		return
	}
	if *explain {
		st, trace, err := caster.ValidateTraced(doc)
		printTrace(trace)
		fmt.Fprintf(os.Stderr, "explain: %d skips, %d rejects; visited %d of %d nodes (work saved %.1f%%), scanned %d symbols (skipped %d)\n",
			st.SubsumedSkips, st.DisjointRejects,
			st.NodesVisited(), doc.NodeCount(), 100*st.WorkSavedRatio(int64(doc.NodeCount())),
			st.AutomatonSteps, st.SymbolsSkipped)
		report("schema cast", st, err, *stats)
		return
	}
	st, err := caster.ValidateStats(doc)
	report("schema cast", st, err, *stats)
}

// printTrace renders the decision trace as an indented tree, one line per
// decision, to stderr.
func printTrace(trace []revalidate.TraceEvent) {
	for _, ev := range trace {
		types := ""
		if ev.SrcType != "" || ev.DstType != "" {
			types = fmt.Sprintf(" (%s → %s)", ev.SrcType, ev.DstType)
		}
		fmt.Fprintf(os.Stderr, "%s%-7s %s [%s]%s: %s\n",
			strings.Repeat("  ", ev.Depth), ev.Action, ev.Path, ev.Dewey, types, ev.Detail)
	}
}

// runStreaming validates straight off the token stream: full validation
// without -source, streaming schema cast with it. Both modes run governed:
// the -max-depth/-max-elements/-timeout flags bound what one document can
// cost, matching the daemon's posture.
func runStreaming(ctx context.Context, u *revalidate.Universe, target *revalidate.Schema, sourcePath, dtdRoot string, r *os.File, lim revalidate.Limits, stats, explain bool) {
	if sourcePath == "" {
		st, err := target.ValidateStreamContext(ctx, r, lim)
		if stats {
			fmt.Fprintf(os.Stderr, "streaming full validation: visited=%d steps=%d values=%d\n",
				st.ElementsVisited, st.AutomatonSteps, st.ValuesChecked)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "INVALID: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("valid")
		return
	}
	source, err := loadSchema(u, sourcePath, dtdRoot)
	exitOn(err)
	sc, err := revalidate.NewStreamCaster(source, target)
	exitOn(err)
	var st revalidate.StreamStats
	if explain {
		var trace []revalidate.TraceEvent
		st, trace, err = sc.ValidateTracedContext(ctx, r, lim)
		printTrace(trace)
		fmt.Fprintf(os.Stderr, "explain: %d skips, %d rejects; skimmed %d of %d elements (work saved %.1f%%), scanned %d symbols (skipped %d)\n",
			st.SubsumedSkips, st.DisjointRejects,
			st.ElementsSkimmed, st.ElementsVisited+st.ElementsSkimmed, 100*st.WorkSavedRatio(),
			st.AutomatonSteps, st.SymbolsSkipped)
	} else {
		st, err = sc.ValidateContext(ctx, r, lim)
	}
	if stats {
		fmt.Fprintf(os.Stderr, "streaming schema cast: visited=%d skimmed=%d steps=%d values=%d\n",
			st.ElementsVisited, st.ElementsSkimmed, st.AutomatonSteps, st.ValuesChecked)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "INVALID: %v\n", err)
		os.Exit(exitInvalid)
	}
	fmt.Println("valid")
}

func loadSchema(u *revalidate.Universe, path, dtdRoot string) (*revalidate.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := string(data)
	isDTD := strings.HasSuffix(path, ".dtd") ||
		(!strings.HasSuffix(path, ".xsd") && strings.Contains(text, "<!ELEMENT"))
	if isDTD {
		return u.LoadDTD(text, dtdRoot)
	}
	return u.LoadXSDString(text)
}

func report(mode string, st revalidate.Stats, err error, withStats bool) {
	if withStats {
		fmt.Fprintf(os.Stderr, "%s: nodes=%d (elements=%d text=%d) automaton-steps=%d skips=%d full-validations=%d\n",
			mode, st.NodesVisited(), st.ElementsVisited, st.TextNodesVisited,
			st.AutomatonSteps, st.SubsumedSkips, st.FullValidations)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "INVALID: %v\n", err)
		os.Exit(exitInvalid)
	}
	fmt.Println("valid")
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlcast:", err)
		os.Exit(exitUsage)
	}
}
