// Command schemadump prints the abstract-XML-schema view of an XSD or DTD
// — the (Σ, T, ρ, R) tables of EDBT'04 (its Table 1 renders the POType1
// row of Figure 1a) — and optionally the compiled content-model DFAs.
//
// Usage:
//
//	schemadump schema.xsd
//	schemadump -dfa POType1 schema.xsd
//	schemadump -relations other.xsd schema.xsd   # R_sub / R_dis vs. another schema
//	schemadump -artifact pair.xca                # inspect a compiled pair artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/artifact"
	"repro/internal/dtd"
	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/subsume"
	"repro/internal/xsd"
)

func main() {
	var (
		dfaType      = flag.String("dfa", "", "also dump the compiled DFA of this type")
		relations    = flag.String("relations", "", "compute R_sub/R_dis against this second schema")
		dtdRoot      = flag.String("dtd-root", "", "root element for DTD schemas without a DOCTYPE")
		artifactMode = flag.Bool("artifact", false, "treat the argument as a compiled pair artifact (.xca) and print its structure")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: schemadump [flags] schema.(xsd|dtd)\n")
		fmt.Fprintf(os.Stderr, "       schemadump -artifact blob.xca\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *artifactMode {
		exitOn(dumpArtifact(flag.Arg(0)))
		return
	}

	alpha := fa.NewAlphabet()
	s, err := load(flag.Arg(0), alpha, *dtdRoot)
	exitOn(err)

	fmt.Print(s.String())
	fmt.Printf("DTD-shaped: %v\n", s.IsDTD())
	if s.Ident != nil {
		fmt.Println("identity constraints:")
		for _, c := range s.Ident.Constraints() {
			fmt.Printf("  %s\n", c)
		}
	}

	if *dfaType != "" {
		id := s.TypeByName(*dfaType)
		if id == schema.NoType {
			exitOn(fmt.Errorf("type %q not found", *dfaType))
		}
		t := s.TypeOf(id)
		if t.Simple {
			fmt.Printf("\n%s is a simple type (%s); no content DFA\n", t.Name, t.Value)
		} else {
			fmt.Printf("\ncontent-model DFA of %s:\n%s", t.Name, t.DFA.Dump(alpha.Names()))
		}
	}

	if *relations != "" {
		other, err := load(*relations, alpha, *dtdRoot)
		exitOn(err)
		rel, err := subsume.Compute(s, other)
		exitOn(err)
		fmt.Printf("\nrelations %s (source) vs %s (target):\n", flag.Arg(0), *relations)
		for _, a := range s.Types {
			var subs, diss []string
			for _, b := range other.Types {
				if rel.Subsumed(a.ID, b.ID) {
					subs = append(subs, b.Name)
				}
				if rel.Disjoint(a.ID, b.ID) {
					diss = append(diss, b.Name)
				}
			}
			fmt.Printf("  %-16s ≤ {%s}\n", a.Name, strings.Join(subs, ", "))
			fmt.Printf("  %-16s ⊘ {%s}\n", a.Name, strings.Join(diss, ", "))
		}
		st := rel.Stats()
		fmt.Printf("  %d subsumed pairs, %d disjoint pairs over %d×%d types\n",
			st.SubsumedPairs, st.DisjointPairs, st.SrcTypes, st.DstTypes)
	}
}

// dumpArtifact prints the structural summary of one compiled pair blob:
// header and addressing, both schemas, relation counts, the per-type-pair
// casters and the section byte budget. It never re-compiles the embedded
// schema texts, so it works on blobs a current build would reject as stale.
func dumpArtifact(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := artifact.Inspect(blob)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("artifact %s\n", path)
	fmt.Printf("  format version %d, %d bytes (%d payload), crc32 %08x\n",
		info.Version, info.TotalBytes, info.PayloadBytes, info.CRC32)
	fmt.Printf("  key %s\n", info.Key)
	for _, s := range []struct {
		label string
		sum   artifact.SchemaSummary
	}{{"source", info.Src}, {"target", info.Dst}} {
		fmt.Printf("  %s: %s", s.label, s.sum.Format)
		if s.sum.DTDRoot != "" {
			fmt.Printf(" (root %s)", s.sum.DTDRoot)
		}
		fmt.Printf(", %d text bytes, hash %s\n", s.sum.TextBytes, s.sum.Hash)
	}
	fmt.Printf("  alphabet: %d symbols\n", info.AlphabetSize)
	fmt.Printf("  relations: %d×%d types, %d subsumed pairs, %d disjoint pairs\n",
		info.SrcTypes, info.DstTypes, info.SubsumedPairs, info.DisjointPairs)
	fmt.Printf("  casters: %d (product IDA states %d)\n", len(info.Casters), info.ProductStates)
	for _, c := range info.Casters {
		fmt.Printf("    src type %d → dst type %d: %d product states, %d target states\n",
			c.SrcType, c.DstType, c.ProductStates, c.TargetStates)
	}
	fmt.Printf("  sections:\n")
	for _, s := range info.Sections {
		fmt.Printf("    %-12s %d bytes\n", s.Name, s.Bytes)
	}
	fmt.Printf("  report: %s\n", info.Report)
	return nil
}

func load(path string, alpha *fa.Alphabet, dtdRoot string) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := string(data)
	if strings.HasSuffix(path, ".dtd") ||
		(!strings.HasSuffix(path, ".xsd") && strings.Contains(text, "<!ELEMENT")) {
		return dtd.Parse(text, dtd.Options{Alpha: alpha, Root: dtdRoot})
	}
	return xsd.ParseString(text, xsd.Options{Alpha: alpha})
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "schemadump:", err)
		os.Exit(2)
	}
}
