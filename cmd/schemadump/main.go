// Command schemadump prints the abstract-XML-schema view of an XSD or DTD
// — the (Σ, T, ρ, R) tables of EDBT'04 (its Table 1 renders the POType1
// row of Figure 1a) — and optionally the compiled content-model DFAs.
//
// Usage:
//
//	schemadump schema.xsd
//	schemadump -dfa POType1 schema.xsd
//	schemadump -relations other.xsd schema.xsd   # R_sub / R_dis vs. another schema
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dtd"
	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/subsume"
	"repro/internal/xsd"
)

func main() {
	var (
		dfaType   = flag.String("dfa", "", "also dump the compiled DFA of this type")
		relations = flag.String("relations", "", "compute R_sub/R_dis against this second schema")
		dtdRoot   = flag.String("dtd-root", "", "root element for DTD schemas without a DOCTYPE")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: schemadump [flags] schema.(xsd|dtd)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	alpha := fa.NewAlphabet()
	s, err := load(flag.Arg(0), alpha, *dtdRoot)
	exitOn(err)

	fmt.Print(s.String())
	fmt.Printf("DTD-shaped: %v\n", s.IsDTD())
	if s.Ident != nil {
		fmt.Println("identity constraints:")
		for _, c := range s.Ident.Constraints() {
			fmt.Printf("  %s\n", c)
		}
	}

	if *dfaType != "" {
		id := s.TypeByName(*dfaType)
		if id == schema.NoType {
			exitOn(fmt.Errorf("type %q not found", *dfaType))
		}
		t := s.TypeOf(id)
		if t.Simple {
			fmt.Printf("\n%s is a simple type (%s); no content DFA\n", t.Name, t.Value)
		} else {
			fmt.Printf("\ncontent-model DFA of %s:\n%s", t.Name, t.DFA.Dump(alpha.Names()))
		}
	}

	if *relations != "" {
		other, err := load(*relations, alpha, *dtdRoot)
		exitOn(err)
		rel, err := subsume.Compute(s, other)
		exitOn(err)
		fmt.Printf("\nrelations %s (source) vs %s (target):\n", flag.Arg(0), *relations)
		for _, a := range s.Types {
			var subs, diss []string
			for _, b := range other.Types {
				if rel.Subsumed(a.ID, b.ID) {
					subs = append(subs, b.Name)
				}
				if rel.Disjoint(a.ID, b.ID) {
					diss = append(diss, b.Name)
				}
			}
			fmt.Printf("  %-16s ≤ {%s}\n", a.Name, strings.Join(subs, ", "))
			fmt.Printf("  %-16s ⊘ {%s}\n", a.Name, strings.Join(diss, ", "))
		}
		st := rel.Stats()
		fmt.Printf("  %d subsumed pairs, %d disjoint pairs over %d×%d types\n",
			st.SubsumedPairs, st.DisjointPairs, st.SrcTypes, st.DstTypes)
	}
}

func load(path string, alpha *fa.Alphabet, dtdRoot string) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := string(data)
	if strings.HasSuffix(path, ".dtd") ||
		(!strings.HasSuffix(path, ".xsd") && strings.Contains(text, "<!ELEMENT")) {
		return dtd.Parse(text, dtd.Options{Alpha: alpha, Root: dtdRoot})
	}
	return xsd.ParseString(text, xsd.Options{Alpha: alpha})
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "schemadump:", err)
		os.Exit(2)
	}
}
