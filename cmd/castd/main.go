// Command castd is the schema cast revalidation daemon: a long-running
// HTTP service that registers schemas, amortizes the per-pair
// preprocessing (R_sub/R_dis relations and immediate decision automata) in
// an LRU cache, and cast-validates documents streamed through request
// bodies — the message-broker deployment of EDBT'04 §1.
//
// Usage:
//
//	castd -addr :8347
//
//	curl -X PUT --data-binary @v1.xsd localhost:8347/schemas/v1
//	curl -X PUT --data-binary @v2.xsd localhost:8347/schemas/v2
//	curl -X POST --data-binary @order.xml localhost:8347/cast/v1/v2
//	curl localhost:8347/pairs/v1/v2     # static compatibility, no document
//	curl localhost:8347/metrics         # Prometheus text exposition
//	curl localhost:8347/metrics.json    # JSON counter snapshot
//
// With -pprof the net/http/pprof profiling handlers are mounted under
// /debug/pprof/ (off by default: profiling endpoints leak heap contents
// and should never face untrusted clients).
//
// On SIGINT/SIGTERM the daemon flips /healthz to 503 (so load balancers
// drain it), stops accepting connections and finishes in-flight
// validations, up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		cacheEntries = flag.Int("cache-entries", 64, "max cached compiled schema pairs (0 = unlimited)")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "approximate byte budget for cached pairs (0 = unlimited)")
		workers      = flag.Int("workers", 0, "batch validation workers per request (0 = one per CPU)")
		drain        = flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight validations")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		accessLog    = flag.Bool("access-log", false, "log one line per request (request id, route, status, duration)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: castd [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	reg := registry.New(registry.Config{MaxEntries: *cacheEntries, MaxBytes: *cacheBytes})
	opts := server.Options{Workers: *workers}
	if *accessLog {
		opts.AccessLog = log.New(os.Stderr, "", log.LstdFlags)
	}
	srv := server.New(reg, opts)
	var handler http.Handler = srv
	if *pprofOn {
		// Explicit registrations instead of the package's init-time
		// DefaultServeMux side effect: the endpoints exist only when asked
		// for.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		log.Printf("castd: pprof enabled at /debug/pprof/")
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("castd: %v", err)
		os.Exit(1)
	}
	// The resolved address matters when -addr asked for port 0.
	log.Printf("castd: listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Printf("castd: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	srv.SetDraining(true) // /healthz answers 503 from here on
	log.Printf("castd: draining in-flight validations (deadline %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("castd: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("castd: bye")
}
