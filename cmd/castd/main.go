// Command castd is the schema cast revalidation daemon: a long-running
// HTTP service that registers schemas, amortizes the per-pair
// preprocessing (R_sub/R_dis relations and immediate decision automata) in
// an LRU cache, and cast-validates documents streamed through request
// bodies — the message-broker deployment of EDBT'04 §1.
//
// Usage:
//
//	castd -addr :8347
//
//	curl -X PUT --data-binary @v1.xsd localhost:8347/schemas/v1
//	curl -X PUT --data-binary @v2.xsd localhost:8347/schemas/v2
//	curl -X POST --data-binary @order.xml localhost:8347/cast/v1/v2
//	curl localhost:8347/pairs/v1/v2     # static compatibility, no document
//	curl localhost:8347/metrics         # Prometheus text exposition
//	curl localhost:8347/metrics.json    # JSON counter snapshot
//	curl localhost:8347/debug/traces    # retained request traces (spans)
//	curl localhost:8347/debug/profiles  # continuous-profiling ring (pprof)
//	curl localhost:8347/debug/hotpairs  # per-pair cast cost attribution
//	curl localhost:8347/debug/fleet     # cluster-wide merged metric view
//
// Logging is structured (log/slog); -log-format selects the text or JSON
// handler. Every record emitted while a request is active carries the
// request's trace_id/span_id, so log lines correlate with the spans on
// /debug/traces. Tracing is sampled at the tail: -trace-sample sets the
// head probability (0 disables tracing entirely), and slow (>=
// -trace-slow) or failed requests are always retained while tracing is on.
//
// With -otlp-endpoint every trace the tail sampler retains and a periodic
// snapshot of every metric family are exported to an OTLP/HTTP collector
// as JSON (POST <endpoint>/v1/traces and /v1/metrics). Export is
// fire-and-forget behind a bounded drop-oldest queue — a slow or down
// collector never blocks a request — and the exporter accounts for itself
// on /metrics (castd_otlp_*). Shutdown flushes the queue.
//
// With -artifact-dir the daemon persists each compiled pair as a
// content-addressed artifact blob and warms from that directory after a
// restart with zero recompiles; corrupt or stale blobs are quarantined and
// recompiled. With -peers (plus -self-url) daemons form a cluster: each
// pair key has one rendezvous-hash owner, and the other members fetch its
// compiled artifact (or proxy the first request to it) instead of
// compiling their own copy.
//
// With -pprof the net/http/pprof profiling handlers are mounted under
// /debug/pprof/ (off by default: profiling endpoints leak heap contents
// and should never face untrusted clients).
//
// On SIGINT/SIGTERM the daemon flips /healthz to 503 (so load balancers
// drain it), stops accepting connections and finishes in-flight
// validations, up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/faultinject"
	"repro/internal/profiling"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/telemetry/otlp"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		cacheEntries = flag.Int("cache-entries", 64, "max cached compiled schema pairs (0 = unlimited)")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "approximate byte budget for cached pairs (0 = unlimited)")
		workers      = flag.Int("workers", 0, "batch validation workers per request (0 = one per CPU)")
		drain        = flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight validations")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		accessLog    = flag.Bool("access-log", false, "log one record per request (request id, route, status, duration, trace id)")
		logFormat    = flag.String("log-format", "text", "log handler: text or json")
		traceSample  = flag.Float64("trace-sample", 1, "head sampling probability for request traces in [0,1]; 0 disables tracing")
		traceSlow    = flag.Duration("trace-slow", telemetry.DefaultSlowThreshold, "requests at least this slow are always retained by the tail sampler")
		traceBuffer  = flag.Int("trace-buffer", telemetry.DefaultTraceCapacity, "retained-trace ring capacity for /debug/traces")
		castTimeout  = flag.Duration("cast-timeout", 30*time.Second, "per-request deadline for cast and batch validations; stalled reads and long casts fail with 408 (0 = no deadline)")
		maxDocBytes  = flag.Int64("max-doc-bytes", 64<<20, "max bytes per document; larger casts fail with 413, larger batch entries fail their slot (0 = unlimited)")
		maxDepth     = flag.Int("max-depth", 1024, "max open-element depth per document; deeper documents fail with 422 (0 = unlimited)")
		maxElements  = flag.Int64("max-elements", 10_000_000, "max elements per document, visited plus skimmed; larger documents fail with 422 (0 = unlimited)")
		maxInFlight  = flag.Int("max-in-flight", 256, "max concurrently admitted work requests; excess requests are shed with 429 + Retry-After (0 = unlimited)")
		faultSpec    = flag.String("fault-inject", "", "arm fault injection for chaos testing, e.g. \"compile-panic,read-delay=50ms\" (never use in production)")
		runtimeIvl   = flag.Duration("runtime-metrics-interval", 10*time.Second, "Go runtime health sampling cadence for the go_* metric families (0 = sample once at startup only)")
		profRing     = flag.Int("profile-ring", 32, "retained profiles in the /debug/profiles ring")
		profBaseline = flag.Duration("profile-baseline", 10*time.Minute, "period of the low-rate baseline profile capture (0 = no baseline)")
		profCPU      = flag.Duration("profile-cpu-duration", 5*time.Second, "CPU profiling window per capture")
		profLatency  = flag.Duration("profile-latency-threshold", 0, "capture a profile when a work request is at least this slow (0 = trigger off)")
		profHeap     = flag.Int64("profile-heap-growth", 0, "capture a heap profile when live heap grows by at least this many bytes between checks (0 = trigger off)")
		hotPairs     = flag.Int("hot-pairs", server.DefaultHotPairK, "schema pairs tracked individually on /metrics and /debug/hotpairs; the rest fold into pair=\"other\" (negative = off)")
		peerProbe    = flag.Duration("peer-probe-interval", server.DefaultPeerProbeInterval, "peer health probe cadence feeding castd_peer_up (clustered daemons only)")
		peerTimeout  = flag.Duration("peer-timeout", server.DefaultPeerTimeout, "deadline per peer attempt (artifact fetch or hedge); the whole chain is bounded by -cast-timeout")
		peerRetries  = flag.Int("peer-retries", server.DefaultPeerRetries, "retries per failed peer fetch, granted by the global retry budget (negative = no retries)")
		brkFailures  = flag.Int("peer-breaker-failures", 5, "consecutive peer failures that open its circuit breaker")
		brkWindow    = flag.Duration("peer-breaker-window", 30*time.Second, "rolling window for the breaker's error-rate trip")
		brkRate      = flag.Float64("peer-breaker-rate", 0.5, "windowed error rate in (0,1] that opens the breaker (with enough samples)")
		brkOpenFor   = flag.Duration("peer-breaker-open-for", 5*time.Second, "cool-off an open breaker waits before admitting one probe request")
		hedgeAfter   = flag.Duration("hedge-after", 100*time.Millisecond, "hedge an artifact fetch to another warm peer after this long (floor under the observed p95; 0 = hedging off)")
		degradedMode = flag.String("degraded-mode", server.DegradedModeLocal, "what a non-owner serves while the owner's breaker is open: local (compile here), stale (serve disk artifacts only), fail (503 + Retry-After)")
		artifactDir  = flag.String("artifact-dir", "", "persist compiled pair artifacts in this directory; a restarted daemon warms from it with zero recompiles (empty = in-memory only)")
		peersFlag    = flag.String("peers", "", "comma-separated base URLs of every cluster member; each pair is compiled once cluster-wide by its rendezvous-hash owner (empty = standalone)")
		selfURL      = flag.String("self-url", "", "this instance's base URL as peers address it, e.g. http://10.0.0.1:8347 (required with -peers)")
		otlpEndpoint = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL, e.g. http://collector:4318; retained traces and periodic metric snapshots are exported there (empty = export off)")
		otlpInterval = flag.Duration("otlp-interval", otlp.DefaultInterval, "metric snapshot export cadence for -otlp-endpoint")
		otlpQueue    = flag.Int("otlp-queue", otlp.DefaultQueueSize, "OTLP export queue capacity; the oldest batch is dropped on overflow")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: castd [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	var inner slog.Handler
	switch *logFormat {
	case "text":
		inner = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		inner = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "castd: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	// The correlating wrapper stamps trace_id/span_id onto every record
	// logged with a request context — castd's, the server's and the
	// registry's records all correlate with /debug/traces.
	logger := slog.New(telemetry.NewCorrelateHandler(inner))

	tracer := telemetry.NewTracer(telemetry.TracerOptions{
		SampleRate:    *traceSample,
		SlowThreshold: *traceSlow,
		Capacity:      *traceBuffer,
	})

	switch *degradedMode {
	case server.DegradedModeLocal, server.DegradedModeStale, server.DegradedModeFail:
	default:
		fmt.Fprintf(os.Stderr, "castd: -degraded-mode must be local, stale or fail, got %q\n", *degradedMode)
		os.Exit(2)
	}

	var peers []string
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if *selfURL == "" {
			fmt.Fprintln(os.Stderr, "castd: -peers requires -self-url so this instance knows which pair keys it owns")
			os.Exit(2)
		}
	}

	var store *artifact.Store
	if *artifactDir != "" {
		var err error
		store, err = artifact.OpenStore(*artifactDir, logger)
		if err != nil {
			fmt.Fprintf(os.Stderr, "castd: -artifact-dir: %v\n", err)
			os.Exit(2)
		}
		logger.Info("castd: artifact store open", "dir", *artifactDir)
	}

	reg := registry.New(registry.Config{
		MaxEntries: *cacheEntries,
		MaxBytes:   *cacheBytes,
		Logger:     logger,
		Store:      store,
	})
	if *faultSpec != "" {
		cfg, err := faultinject.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "castd: -fault-inject: %v\n", err)
			os.Exit(2)
		}
		faultinject.Enable(cfg)
		logger.Warn("castd: fault injection armed — this build will fail on purpose",
			"spec", *faultSpec)
	}
	// The profiling ring captures on a low-rate baseline plus anomaly
	// triggers; the server feeds it slow-request, shed and panic events.
	prof := profiling.New(profiling.Options{
		Capacity:         *profRing,
		CPUDuration:      *profCPU,
		BaselineInterval: *profBaseline,
		LatencyThreshold: *profLatency,
		HeapGrowth:       *profHeap,
		Logger:           logger,
	})
	prof.Start()
	defer prof.Stop()

	srv := server.New(reg, server.Options{
		Workers:             *workers,
		Logger:              logger,
		AccessLog:           *accessLog,
		Tracer:              tracer,
		CastTimeout:         *castTimeout,
		MaxDocBytes:         *maxDocBytes,
		MaxDepth:            *maxDepth,
		MaxElements:         *maxElements,
		MaxInFlight:         *maxInFlight,
		Profiler:            prof,
		HotPairK:            *hotPairs,
		PeerProbeInterval:   *peerProbe,
		PeerTimeout:         *peerTimeout,
		PeerRetries:         *peerRetries,
		PeerBreakerFailures: *brkFailures,
		PeerBreakerWindow:   *brkWindow,
		PeerBreakerRate:     *brkRate,
		PeerBreakerOpenFor:  *brkOpenFor,
		HedgeAfter:          *hedgeAfter,
		DegradedMode:        *degradedMode,
		SelfURL:             *selfURL,
		Peers:               peers,
		OTLPEndpoint:        *otlpEndpoint,
		OTLPInterval:        *otlpInterval,
		OTLPQueue:           *otlpQueue,
	})
	defer srv.Close()

	// Runtime health sampling lands on the same /metrics page as the cast
	// families; one construction-time sample means the first scrape is
	// never empty.
	runtimeStats := telemetry.NewRuntimeCollector(srv.Metrics(), *runtimeIvl)
	runtimeStats.Start()
	defer runtimeStats.Stop()
	var handler http.Handler = srv
	if *pprofOn {
		// Explicit registrations instead of the package's init-time
		// DefaultServeMux side effect: the endpoints exist only when asked
		// for.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		logger.Info("castd: pprof enabled", "path", "/debug/pprof/")
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("castd: listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// The resolved address matters when -addr asked for port 0.
	logger.Info("castd: listening",
		"addr", ln.Addr().String(),
		"trace_sample", *traceSample,
		"log_format", *logFormat)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Error("castd: serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	srv.SetDraining(true) // /healthz answers 503 from here on
	logger.Info("castd: draining in-flight validations", "deadline", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("castd: drain incomplete", "err", err)
		os.Exit(1)
	}
	logger.Info("castd: bye")
}
