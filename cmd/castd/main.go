// Command castd is the schema cast revalidation daemon: a long-running
// HTTP service that registers schemas, amortizes the per-pair
// preprocessing (R_sub/R_dis relations and immediate decision automata) in
// an LRU cache, and cast-validates documents streamed through request
// bodies — the message-broker deployment of EDBT'04 §1.
//
// Usage:
//
//	castd -addr :8347
//
//	curl -X PUT --data-binary @v1.xsd localhost:8347/schemas/v1
//	curl -X PUT --data-binary @v2.xsd localhost:8347/schemas/v2
//	curl -X POST --data-binary @order.xml localhost:8347/cast/v1/v2
//	curl localhost:8347/pairs/v1/v2     # static compatibility, no document
//	curl localhost:8347/metrics
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains
// in-flight validations, up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8347", "listen address")
		cacheEntries = flag.Int("cache-entries", 64, "max cached compiled schema pairs (0 = unlimited)")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "approximate byte budget for cached pairs (0 = unlimited)")
		workers      = flag.Int("workers", 0, "batch validation workers per request (0 = one per CPU)")
		drain        = flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight validations")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: castd [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	reg := registry.New(registry.Config{MaxEntries: *cacheEntries, MaxBytes: *cacheBytes})
	hs := &http.Server{
		Handler:           server.New(reg, server.Options{Workers: *workers}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("castd: %v", err)
		os.Exit(1)
	}
	// The resolved address matters when -addr asked for port 0.
	log.Printf("castd: listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Printf("castd: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	log.Printf("castd: draining in-flight validations (deadline %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("castd: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("castd: bye")
}
