// Command benchdiff is the perf-regression gate: it compares a fresh
// castbench -json run against the committed baseline (BENCH_cast.json)
// and exits non-zero when a scenario got meaningfully slower or less
// effective at skipping work.
//
// Usage:
//
//	castbench -json /tmp/current.json
//	benchdiff -baseline BENCH_cast.json -current /tmp/current.json
//
// Two regressions are gated, with thresholds chosen to sit above
// shared-runner noise (see EXPERIMENTS.md):
//
//   - ns/op: a scenario more than -max-slowdown (default 25%) slower than
//     the baseline fails. Wall-clock numbers on CI runners are noisy, so
//     the bar is deliberately loose; it catches algorithmic regressions
//     (a lost fast path, an accidental O(n) in the hot loop), not
//     single-digit drift.
//   - skip ratio: the fraction of elements the cast validator skims or
//     skips is machine-independent, so the tolerance is tight: a drop of
//     more than -max-skip-drop (default 0.02) fails. This is the paper's
//     actual claim — losing skipped subtrees means the optimization
//     stopped firing, however fast the runner happens to be.
//   - allocs/op: scenarios that record steady-state allocations (the
//     streaming rows) are gated exactly: allocation counts are
//     deterministic, so any increase beyond -max-alloc-growth (default 0)
//     fails. This keeps the pooled scanner hot path allocation-free; a
//     stray conversion or escaped buffer shows up as +1 here long before
//     it shows up in ns/op.
//
// A scenario present in the baseline but missing from the current run
// also fails: silently dropping a benchmark is how regressions hide.
// Scenarios only in the current run are reported but do not fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// scenario mirrors the benchScenario rows castbench -json writes.
type scenario struct {
	Name                string  `json:"name"`
	NsPerOp             int64   `json:"nsPerOp"`
	BaselineNsPerOp     int64   `json:"baselineNsPerOp"`
	Speedup             float64 `json:"speedup"`
	SkipRatio           float64 `json:"skipRatio"`
	SymbolsScannedRatio float64 `json:"symbolsScannedRatio"`
	AllocsPerOp         int64   `json:"allocsPerOp,omitempty"`
	BaselineAllocsPerOp int64   `json:"baselineAllocsPerOp,omitempty"`
}

// limits are the gate thresholds; a row fails when it exceeds any.
type limits struct {
	// MaxSlowdown is the tolerated fractional ns/op increase (0.25 = +25%).
	MaxSlowdown float64
	// MaxSkipDrop is the tolerated absolute skip-ratio decrease.
	MaxSkipDrop float64
	// MaxAllocGrowth is the tolerated absolute allocs/op increase for
	// scenarios whose baseline row records allocations.
	MaxAllocGrowth int64
}

// verdict is the comparison result for one baseline scenario.
type verdict struct {
	Name     string
	Old, New scenario
	Missing  bool
	Failures []string
}

// compare evaluates every baseline scenario against the current run.
func compare(baseline, current []scenario, lim limits) []verdict {
	byName := make(map[string]scenario, len(current))
	for _, s := range current {
		byName[s.Name] = s
	}
	var out []verdict
	for _, old := range baseline {
		v := verdict{Name: old.Name, Old: old}
		cur, ok := byName[old.Name]
		if !ok {
			v.Missing = true
			v.Failures = append(v.Failures, "scenario missing from current run")
			out = append(out, v)
			continue
		}
		v.New = cur
		if old.NsPerOp > 0 {
			slowdown := float64(cur.NsPerOp-old.NsPerOp) / float64(old.NsPerOp)
			if slowdown > lim.MaxSlowdown {
				v.Failures = append(v.Failures, fmt.Sprintf(
					"ns/op %d -> %d (%+.1f%%, limit +%.0f%%)",
					old.NsPerOp, cur.NsPerOp, slowdown*100, lim.MaxSlowdown*100))
			}
		}
		if drop := old.SkipRatio - cur.SkipRatio; drop > lim.MaxSkipDrop {
			v.Failures = append(v.Failures, fmt.Sprintf(
				"skip ratio %.4f -> %.4f (-%.4f, limit -%.2f)",
				old.SkipRatio, cur.SkipRatio, drop, lim.MaxSkipDrop))
		}
		// Allocation counts are deterministic, so the gate is exact. Only
		// rows whose baseline recorded allocations participate: a zero in
		// the baseline means the scenario predates the column (or is a
		// tree row, where allocations are not a tracked property).
		if old.AllocsPerOp > 0 {
			if growth := cur.AllocsPerOp - old.AllocsPerOp; growth > lim.MaxAllocGrowth {
				v.Failures = append(v.Failures, fmt.Sprintf(
					"allocs/op %d -> %d (+%d, limit +%d)",
					old.AllocsPerOp, cur.AllocsPerOp, growth, lim.MaxAllocGrowth))
			}
		}
		out = append(out, v)
	}
	return out
}

// extras lists current scenarios with no baseline row (informational).
func extras(baseline, current []scenario) []string {
	known := make(map[string]bool, len(baseline))
	for _, s := range baseline {
		known[s.Name] = true
	}
	var names []string
	for _, s := range current {
		if !known[s.Name] {
			names = append(names, s.Name)
		}
	}
	return names
}

func load(path string) ([]scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []scenario
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no scenarios", path)
	}
	return rows, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_cast.json", "committed baseline scenario file")
		currentPath  = flag.String("current", "", "fresh castbench -json output to gate (required)")
		maxSlowdown  = flag.Float64("max-slowdown", 0.25, "tolerated fractional ns/op increase per scenario")
		maxSkipDrop  = flag.Float64("max-skip-drop", 0.02, "tolerated absolute skip-ratio decrease per scenario")
		maxAllocs    = flag.Int64("max-alloc-growth", 0, "tolerated absolute allocs/op increase per scenario")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	lim := limits{MaxSlowdown: *maxSlowdown, MaxSkipDrop: *maxSkipDrop, MaxAllocGrowth: *maxAllocs}
	failed := false
	for _, v := range compare(baseline, current, lim) {
		if len(v.Failures) == 0 {
			allocs := ""
			if v.Old.AllocsPerOp > 0 || v.New.AllocsPerOp > 0 {
				allocs = fmt.Sprintf("  allocs %d -> %d", v.Old.AllocsPerOp, v.New.AllocsPerOp)
			}
			fmt.Printf("ok   %-28s ns/op %8d -> %8d  skip %.4f -> %.4f%s\n",
				v.Name, v.Old.NsPerOp, v.New.NsPerOp, v.Old.SkipRatio, v.New.SkipRatio, allocs)
			continue
		}
		failed = true
		for _, f := range v.Failures {
			fmt.Printf("FAIL %-28s %s\n", v.Name, f)
		}
	}
	for _, name := range extras(baseline, current) {
		fmt.Printf("new  %-28s (no baseline row; commit a refreshed BENCH_cast.json to gate it)\n", name)
	}
	if failed {
		fmt.Println("benchdiff: regression detected")
		os.Exit(1)
	}
	fmt.Println("benchdiff: within thresholds")
}
