package main

import (
	"strings"
	"testing"
)

var lim = limits{MaxSlowdown: 0.25, MaxSkipDrop: 0.02}

func row(name string, ns int64, skip float64) scenario {
	return scenario{Name: name, NsPerOp: ns, SkipRatio: skip}
}

func failuresFor(t *testing.T, vs []verdict, name string) []string {
	t.Helper()
	for _, v := range vs {
		if v.Name == name {
			return v.Failures
		}
	}
	t.Fatalf("no verdict for %q", name)
	return nil
}

func TestCompareWithinThresholds(t *testing.T) {
	base := []scenario{row("a", 1000, 0.99), row("b", 200000, 0.30)}
	// 24% slower and a 0.019 skip drop both sit just inside the limits.
	cur := []scenario{row("a", 1240, 0.971), row("b", 200000, 0.30)}
	for _, v := range compare(base, cur, lim) {
		if len(v.Failures) != 0 {
			t.Errorf("%s: unexpected failures %v", v.Name, v.Failures)
		}
	}
}

func TestCompareSlowdownFails(t *testing.T) {
	base := []scenario{row("a", 1000, 0.99)}
	cur := []scenario{row("a", 1260, 0.99)} // +26%
	fs := failuresFor(t, compare(base, cur, lim), "a")
	if len(fs) != 1 || !strings.Contains(fs[0], "ns/op") {
		t.Fatalf("want one ns/op failure, got %v", fs)
	}
}

func TestCompareSkipDropFails(t *testing.T) {
	base := []scenario{row("a", 1000, 0.99)}
	cur := []scenario{row("a", 900, 0.96)} // faster, but skipping 0.03 less
	fs := failuresFor(t, compare(base, cur, lim), "a")
	if len(fs) != 1 || !strings.Contains(fs[0], "skip ratio") {
		t.Fatalf("want one skip-ratio failure, got %v", fs)
	}
}

func TestCompareMissingScenarioFails(t *testing.T) {
	base := []scenario{row("a", 1000, 0.99), row("gone", 500, 0.5)}
	cur := []scenario{row("a", 1000, 0.99)}
	vs := compare(base, cur, lim)
	fs := failuresFor(t, vs, "gone")
	if len(fs) != 1 || !strings.Contains(fs[0], "missing") {
		t.Fatalf("want missing-scenario failure, got %v", fs)
	}
	for _, v := range vs {
		if v.Name == "gone" && !v.Missing {
			t.Error("Missing flag not set")
		}
	}
}

func TestCompareSpeedupAndSkipGainPass(t *testing.T) {
	base := []scenario{row("a", 1000, 0.90)}
	cur := []scenario{row("a", 400, 0.99)}
	if fs := failuresFor(t, compare(base, cur, lim), "a"); len(fs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", fs)
	}
}

func TestCompareAllocGrowthFails(t *testing.T) {
	base := []scenario{{Name: "a", NsPerOp: 1000, SkipRatio: 0.99, AllocsPerOp: 2}}
	cur := []scenario{{Name: "a", NsPerOp: 1000, SkipRatio: 0.99, AllocsPerOp: 3}}
	fs := failuresFor(t, compare(base, cur, lim), "a")
	if len(fs) != 1 || !strings.Contains(fs[0], "allocs/op") {
		t.Fatalf("want one allocs/op failure, got %v", fs)
	}
	// An equal count passes, and a reduction passes.
	for _, n := range []int64{1, 2} {
		cur[0].AllocsPerOp = n
		if fs := failuresFor(t, compare(base, cur, lim), "a"); len(fs) != 0 {
			t.Fatalf("allocs/op %d vs baseline 2 flagged: %v", n, fs)
		}
	}
}

func TestCompareAllocGateSkippedWithoutBaseline(t *testing.T) {
	// Rows whose baseline predates the allocs column (or tree rows, which
	// never record it) must not be gated on allocations.
	base := []scenario{row("a", 1000, 0.99)}
	cur := []scenario{{Name: "a", NsPerOp: 1000, SkipRatio: 0.99, AllocsPerOp: 50}}
	if fs := failuresFor(t, compare(base, cur, lim), "a"); len(fs) != 0 {
		t.Fatalf("alloc gate fired without a baseline count: %v", fs)
	}
}

func TestExtrasReported(t *testing.T) {
	base := []scenario{row("a", 1000, 0.99)}
	cur := []scenario{row("a", 1000, 0.99), row("brand-new", 10, 0.1)}
	got := extras(base, cur)
	if len(got) != 1 || got[0] != "brand-new" {
		t.Fatalf("extras = %v, want [brand-new]", got)
	}
}
