// Command castbench regenerates every table and figure of the paper's
// evaluation section (EDBT'04 §6), plus the ablations DESIGN.md calls out:
//
//	-table1   Table 1: abstract-schema view of POType1 (Figure 1a)
//	-table2   Table 2: input document file sizes, 2..1000 items
//	-exp1     Figure 3a: Experiment 1 validation times (billTo optional→required)
//	-exp2     Figure 3b: Experiment 2 validation times (maxExclusive 200→100)
//	-table3   Table 3: nodes visited during Experiment 2
//	-mods     extension: incremental revalidation after edits vs. full
//	-stream   extension: streaming cast vs. parse+tree pipelines
//	-prep     preprocessing cost (relations + IDA construction)
//	-parallel extension: batch validation scaling, 1→GOMAXPROCS workers
//	-json     machine-readable scenario results written to BENCH_cast.json
//	-all      everything (default when no flag is given)
//
// The -json output additionally times registry-cold-vs-warm-start: one
// pair compile (relations fixpoints + IDA construction) against loading
// the same pair from a serialized artifact blob — the economy behind
// castd's -artifact-dir warm restarts.
//
// Wall-clock numbers are machine-dependent; the shapes (constant vs.
// linear, cast vs. baseline ratios) are what reproduce the paper. The
// -json output pairs each wall-clock number with the machine-independent
// work ratios (skip ratio, symbols-scanned ratio) so CI can track the
// shapes without chasing nanoseconds.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	revalidate "repro"
	"repro/internal/artifact"
	"repro/internal/baseline"
	"repro/internal/cast"
	"repro/internal/resilience"
	"repro/internal/strcast"
	"repro/internal/stream"
	"repro/internal/subsume"
	"repro/internal/telemetry"
	"repro/internal/update"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

var itemCounts = wgen.PaperItemCounts

func main() {
	var (
		table1 = flag.Bool("table1", false, "Table 1: abstract schema for POType1")
		table2 = flag.Bool("table2", false, "Table 2: input file sizes")
		exp1   = flag.Bool("exp1", false, "Figure 3a: Experiment 1 times")
		exp2   = flag.Bool("exp2", false, "Figure 3b: Experiment 2 times")
		table3 = flag.Bool("table3", false, "Table 3: nodes visited in Experiment 2")
		mods   = flag.Bool("mods", false, "extension: incremental revalidation after edits")
		strm   = flag.Bool("stream", false, "extension: streaming cast vs parse+tree pipelines")
		prep   = flag.Bool("prep", false, "preprocessing cost breakdown")
		par    = flag.Bool("parallel", false, "extension: batch validation scaling across workers")
		jsonTo = flag.String("json", "", "write machine-readable scenario results to this file (conventionally BENCH_cast.json)")
		all    = flag.Bool("all", false, "run everything")
	)
	flag.Parse()
	if *jsonTo != "" {
		runJSON(wgen.NewPaperSchemas(), *jsonTo)
		return
	}
	any := *table1 || *table2 || *exp1 || *exp2 || *table3 || *mods || *strm || *prep || *par
	if *all || !any {
		*table1, *table2, *exp1, *exp2, *table3, *mods, *strm, *prep, *par =
			true, true, true, true, true, true, true, true, true
	}

	ps := wgen.NewPaperSchemas()
	if *table1 {
		runTable1(ps)
	}
	if *table2 {
		runTable2()
	}
	if *exp1 {
		runExperiment1(ps)
	}
	if *exp2 {
		runExperiment2(ps)
	}
	if *table3 {
		runTable3(ps)
	}
	if *mods {
		runModifications(ps)
	}
	if *strm {
		runStreaming(ps)
	}
	if *prep {
		runPreprocessing(ps)
	}
	if *par {
		runParallel()
	}
}

func runTable1(ps *wgen.PaperSchemas) {
	fmt.Println("== Table 1: abstract XML Schema type for POType1 (Figure 1a) ==")
	fmt.Print(ps.Source1.String())
	fmt.Println()
}

func runTable2() {
	fmt.Println("== Table 2: file sizes for input documents ==")
	fmt.Printf("%12s %14s\n", "# Item Nodes", "Size (Bytes)")
	for _, n := range itemCounts {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, Seed: 2004})
		fmt.Printf("%12d %14d\n", n, len(wgen.POXMLBytes(doc)))
	}
	fmt.Println()
}

// timeIt reports the per-validation wall time of fn, amortized over enough
// iterations to exceed ~40ms.
func timeIt(fn func()) time.Duration {
	fn() // warm up
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed > 40*time.Millisecond || iters > 1<<20 {
			return elapsed / time.Duration(iters)
		}
		iters *= 4
	}
}

func runExperiment1(ps *wgen.PaperSchemas) {
	fmt.Println("== Figure 3a / Experiment 1: validate Fig-1a documents against Fig-2 ==")
	fmt.Println("   (billTo optional in source, required in target; documents contain billTo)")
	engine := cast.MustNew(ps.Source1, ps.Target, cast.Options{})
	base := baseline.New(ps.Target)
	fmt.Printf("%8s %16s %16s %10s\n", "items", "schema-cast", "full (Xerces-style)", "speedup")
	for _, n := range itemCounts {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, Seed: 2004})
		castTime := timeIt(func() {
			if _, err := engine.Validate(doc); err != nil {
				fatal(err)
			}
		})
		fullTime := timeIt(func() {
			if _, err := base.Validate(doc); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%8d %13dns %16dns %9.1fx\n", n, castTime.Nanoseconds(), fullTime.Nanoseconds(),
			float64(fullTime)/float64(castTime))
	}
	fmt.Println("   expected shape: cast constant in item count, full linear")
	fmt.Println()
}

func runExperiment2(ps *wgen.PaperSchemas) {
	fmt.Println("== Figure 3b / Experiment 2: validate maxExclusive=200 documents against maxExclusive=100 ==")
	fmt.Println("   (every quantity must be checked; cast skips the other item children)")
	engine := cast.MustNew(ps.Source2, ps.Target, cast.Options{})
	base := baseline.New(ps.Target)
	fmt.Printf("%8s %16s %16s %10s\n", "items", "schema-cast", "full (Xerces-style)", "speedup")
	for _, n := range itemCounts {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, MaxQuantity: 99, Seed: 2004})
		castTime := timeIt(func() {
			if _, err := engine.Validate(doc); err != nil {
				fatal(err)
			}
		})
		fullTime := timeIt(func() {
			if _, err := base.Validate(doc); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%8d %13dns %16dns %9.2fx\n", n, castTime.Nanoseconds(), fullTime.Nanoseconds(),
			float64(fullTime)/float64(castTime))
	}
	fmt.Println("   expected shape: both linear, cast faster by a constant factor")
	fmt.Println("   (~1.4-1.5x here; the paper's modified Xerces reported ~1.3x)")
	fmt.Println()
}

func runTable3(ps *wgen.PaperSchemas) {
	fmt.Println("== Table 3: number of nodes traversed during validation in Experiment 2 ==")
	engine := cast.MustNew(ps.Source2, ps.Target, cast.Options{})
	base := baseline.New(ps.Target)
	fmt.Printf("%12s %14s %14s %8s\n", "# Item Nodes", "Schema Cast", "Full", "ratio")
	for _, n := range itemCounts {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, MaxQuantity: 99, Seed: 2004})
		cs, err := engine.Validate(doc)
		if err != nil {
			fatal(err)
		}
		bs, err := base.Validate(doc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%12d %14d %14d %7.0f%%\n", n, cs.NodesVisited(), bs.NodesVisited(),
			100*float64(cs.NodesVisited())/float64(bs.NodesVisited()))
	}
	fmt.Println("   expected shape: cast visits ~70% of the nodes (paper: ~80% on its tree layout)")
	fmt.Println()
}

func runModifications(ps *wgen.PaperSchemas) {
	fmt.Println("== Extension: incremental revalidation after k edits (same schema) ==")
	engine := cast.MustNew(ps.Target, ps.Target, cast.Options{})
	base := baseline.New(ps.Target)
	const items = 1000
	fmt.Printf("%8s %18s %18s %10s\n", "edits", "incremental", "full revalidation", "speedup")
	for _, edits := range []int{1, 4, 16, 64} {
		// Rebuild document + edits each timing round so state stays fixed;
		// the edit cost itself is excluded by pre-building outside fn.
		doc := wgen.PODocument(wgen.PODocOptions{Items: items, IncludeBillTo: true, Seed: 7})
		tk := update.NewTracker(doc)
		applyEdits(tk, doc, edits)
		trie := tk.Finalize()
		incTime := timeIt(func() {
			if _, err := engine.ValidateModified(doc, trie); err != nil {
				fatal(err)
			}
		})
		fullTime := timeIt(func() {
			if _, err := base.Validate(doc); err != nil {
				fatal(err)
			}
		})
		fmt.Printf("%8d %15dns %15dns %9.1fx\n", edits, incTime.Nanoseconds(), fullTime.Nanoseconds(),
			float64(fullTime)/float64(incTime))
	}
	fmt.Println("   expected shape: incremental cost grows with edits, not document size")
	fmt.Println()
}

// applyEdits applies k legal quantity edits spread across the items.
func applyEdits(tk *update.Tracker, doc *xmltree.Node, k int) {
	items := doc.Children[2].Children
	for i := 0; i < k; i++ {
		item := items[(i*37)%len(items)]
		qtyText := item.Children[1].Children[0]
		if err := tk.SetText(qtyText, "7"); err != nil {
			fatal(err)
		}
	}
}

func runStreaming(ps *wgen.PaperSchemas) {
	fmt.Println("== Extension: streaming pipelines (documents arrive as bytes) ==")
	data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 11}))
	engine := cast.MustNew(ps.Source1, ps.Target, cast.Options{})
	streamCaster, err := stream.NewCaster(ps.Source1, ps.Target)
	if err != nil {
		fatal(err)
	}
	streamFull := stream.NewValidator(ps.Target)
	streamFullStd := stream.NewValidator(ps.Target, stream.WithEncodingXML())
	treeTime := timeIt(func() {
		doc, err := xmltree.ParseString(string(data))
		if err != nil {
			fatal(err)
		}
		if _, err := engine.Validate(doc); err != nil {
			fatal(err)
		}
	})
	scTime := timeIt(func() {
		if _, err := streamCaster.Validate(bytes.NewReader(data)); err != nil {
			fatal(err)
		}
	})
	sfTime := timeIt(func() {
		if _, err := streamFull.Validate(bytes.NewReader(data)); err != nil {
			fatal(err)
		}
	})
	sfStdTime := timeIt(func() {
		if _, err := streamFullStd.Validate(bytes.NewReader(data)); err != nil {
			fatal(err)
		}
	})
	fmt.Printf("  parse + tree cast:             %v per 500-item document\n", treeTime)
	fmt.Printf("  streaming cast (scanner):      %v (O(depth) memory, subsumed subtrees skimmed)\n", scTime)
	fmt.Printf("  streaming full (scanner):      %v\n", sfTime)
	fmt.Printf("  streaming full (encoding/xml): %v\n", sfStdTime)
	fmt.Println()
}

func runPreprocessing(ps *wgen.PaperSchemas) {
	fmt.Println("== Preprocessing cost (static, once per schema pair) ==")
	relTime := timeIt(func() {
		subsume.MustCompute(ps.Source1, ps.Target)
	})
	engTime := timeIt(func() {
		cast.MustNew(ps.Source1, ps.Target, cast.Options{})
	})
	rel := subsume.MustCompute(ps.Source1, ps.Target)
	st := rel.Stats()
	fmt.Printf("  R_sub/R_dis computation: %v (%d subsumed, %d disjoint pairs over %d×%d types)\n",
		relTime, st.SubsumedPairs, st.DisjointPairs, st.SrcTypes, st.DstTypes)
	fmt.Printf("  full engine (relations + content IDAs): %v\n", engTime)
	idaTime := timeIt(func() {
		a := ps.Source1.TypeOf(ps.Source1.TypeByName("POType1")).DFA
		b := ps.Target.TypeOf(ps.Target.TypeByName("POType2")).DFA
		strcast.New(a, b)
	})
	fmt.Printf("  one content-model IDA pair (POType1/POType2): %v\n", idaTime)
	fmt.Println("  memory depends only on schema sizes — never on documents (§7)")
	fmt.Println()
}

// parallelWorkerCounts yields 1, 2, 4, ... up to and including GOMAXPROCS.
func parallelWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// runParallel prints the batch-validation scaling curve on one shared
// caster: the Experiment-2 workload (every quantity facet checked, so
// per-document work is linear in items) through Caster.ValidateAll, and
// the same batch as serialized bytes through StreamCaster.ValidateAll.
func runParallel() {
	fmt.Println("== Extension: parallel batch validation (shared caster, lock-free hot path) ==")
	u := revalidate.NewUniverse()
	src, err := u.LoadXSDString(wgen.Figure2XSD(false, 200))
	if err != nil {
		fatal(err)
	}
	dst, err := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		fatal(err)
	}
	caster, err := revalidate.NewCaster(src, dst)
	if err != nil {
		fatal(err)
	}
	streamCaster, err := revalidate.NewStreamCaster(src, dst)
	if err != nil {
		fatal(err)
	}
	const batch = 64
	docs := make([]*revalidate.Document, batch)
	raw := make([][]byte, batch)
	for i := range docs {
		raw[i] = wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{
			Items: 200, IncludeBillTo: true, MaxQuantity: 99, Seed: int64(i)}))
		docs[i], err = revalidate.ParseDocument(bytes.NewReader(raw[i]))
		if err != nil {
			fatal(err)
		}
	}
	checkAll := func(errs []error) {
		for _, e := range errs {
			if e != nil {
				fatal(e)
			}
		}
	}
	fmt.Printf("  batch: %d documents × 200 items, GOMAXPROCS=%d\n", batch, runtime.GOMAXPROCS(0))
	fmt.Printf("%10s %16s %14s %10s %16s %14s %10s\n",
		"workers", "tree-cast", "docs/s", "speedup", "stream-cast", "docs/s", "speedup")
	var treeBase, streamBase time.Duration
	for _, w := range parallelWorkerCounts() {
		treeTime := timeIt(func() {
			errs, _ := caster.ValidateAll(docs, w)
			checkAll(errs)
		})
		streamTime := timeIt(func() {
			rs := make([]io.Reader, batch)
			for i := range rs {
				rs[i] = bytes.NewReader(raw[i])
			}
			errs, _ := streamCaster.ValidateAll(rs, w)
			checkAll(errs)
		})
		if treeBase == 0 {
			treeBase, streamBase = treeTime, streamTime
		}
		fmt.Printf("%10d %13dµs %14.0f %9.2fx %13dµs %14.0f %9.2fx\n",
			w,
			treeTime.Microseconds(), batch/treeTime.Seconds(), float64(treeBase)/float64(treeTime),
			streamTime.Microseconds(), batch/streamTime.Seconds(), float64(streamBase)/float64(streamTime))
	}
	fmt.Println("   expected shape: docs/s grows with workers up to the core count")
	fmt.Println("   (flat on single-core machines; the tracked series is the scaling curve)")
	fmt.Println()
}

// benchScenario is one row of the -json output: a wall-clock pair plus
// the machine-independent work ratios that reproduce the paper's shapes.
type benchScenario struct {
	// Name identifies the scenario (workload + engine).
	Name string `json:"name"`
	// NsPerOp is the cast engine's time per validation.
	NsPerOp int64 `json:"nsPerOp"`
	// BaselineNsPerOp is the full (Xerces-style) validator's time on the
	// same document.
	BaselineNsPerOp int64 `json:"baselineNsPerOp"`
	// Speedup is BaselineNsPerOp / NsPerOp.
	Speedup float64 `json:"speedup"`
	// SkipRatio is the fraction of the document's nodes (tree engines) or
	// elements (stream engine) the cast never examined.
	SkipRatio float64 `json:"skipRatio"`
	// SymbolsScannedRatio is automaton steps over all content-model symbols
	// seen: < 1 means immediate decisions cut scanning short.
	SymbolsScannedRatio float64 `json:"symbolsScannedRatio"`
	// AllocsPerOp is the steady-state heap allocations per validation on
	// the cast path. Recorded for the streaming scenarios, where the pooled
	// scanner hot path is a tracked property; omitted (0) for tree rows.
	AllocsPerOp int64 `json:"allocsPerOp,omitempty"`
	// BaselineAllocsPerOp is the same measure for the baseline validator.
	BaselineAllocsPerOp int64 `json:"baselineAllocsPerOp,omitempty"`
}

// allocsPerOp measures steady-state allocations of one fn call, after a
// warm-up round so pools are populated.
func allocsPerOp(fn func()) int64 {
	fn()
	return int64(testing.AllocsPerRun(10, fn))
}

// runJSON times the representative scenarios (Experiment 1, Experiment 2,
// streaming cast) and writes them as a JSON array to path. The wall-clock
// fields are machine-dependent; CI assertions should target the ratios.
func runJSON(ps *wgen.PaperSchemas, path string) {
	const items = 1000
	var out []benchScenario

	// Experiment 1: billTo optional→required, cast skips everything.
	{
		engine := cast.MustNew(ps.Source1, ps.Target, cast.Options{})
		base := baseline.New(ps.Target)
		doc := wgen.PODocument(wgen.PODocOptions{Items: items, IncludeBillTo: true, Seed: 2004})
		out = append(out, treeRow("exp1-cast-vs-full-1000", engine, base, doc))
	}
	// Experiment 2: maxExclusive 200→100, every quantity rechecked.
	{
		engine := cast.MustNew(ps.Source2, ps.Target, cast.Options{})
		base := baseline.New(ps.Target)
		doc := wgen.PODocument(wgen.PODocOptions{Items: items, IncludeBillTo: true, MaxQuantity: 99, Seed: 2004})
		out = append(out, treeRow("exp2-cast-vs-full-1000", engine, base, doc))
	}
	// Streaming scenarios on serialized bytes. The stream-cast scenario's
	// baseline is the conventional-tokenizer (encoding/xml) full validator
	// — the same "full (Xerces-style)" computation the scenario has tracked
	// since it was introduced, and the comparison the paper makes (cast
	// engine vs. stock full validation). The byte-level scanner's own
	// contribution is tracked separately by stream-full-scan-vs-stdxml-500,
	// so neither win can silently mask a regression in the other.
	{
		data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 11}))
		sc, err := stream.NewCaster(ps.Source1, ps.Target)
		if err != nil {
			fatal(err)
		}
		sfScan := stream.NewValidator(ps.Target)
		sfStd := stream.NewValidator(ps.Target, stream.WithEncodingXML())
		castFn := func() {
			if _, err := sc.Validate(bytes.NewReader(data)); err != nil {
				fatal(err)
			}
		}
		scanFullFn := func() {
			if _, err := sfScan.Validate(bytes.NewReader(data)); err != nil {
				fatal(err)
			}
		}
		stdFullFn := func() {
			if _, err := sfStd.Validate(bytes.NewReader(data)); err != nil {
				fatal(err)
			}
		}
		castTime := timeIt(castFn)
		scanFullTime := timeIt(scanFullFn)
		stdFullTime := timeIt(stdFullFn)
		st, err := sc.Validate(bytes.NewReader(data))
		if err != nil {
			fatal(err)
		}
		out = append(out, benchScenario{
			Name:                "stream-cast-vs-full-500",
			NsPerOp:             castTime.Nanoseconds(),
			BaselineNsPerOp:     stdFullTime.Nanoseconds(),
			Speedup:             float64(stdFullTime) / float64(castTime),
			SkipRatio:           st.WorkSavedRatio(),
			SymbolsScannedRatio: st.SymbolsScannedRatio(),
			AllocsPerOp:         allocsPerOp(castFn),
			BaselineAllocsPerOp: allocsPerOp(stdFullFn),
		})
		out = append(out, benchScenario{
			Name:                "stream-full-scan-vs-stdxml-500",
			NsPerOp:             scanFullTime.Nanoseconds(),
			BaselineNsPerOp:     stdFullTime.Nanoseconds(),
			Speedup:             float64(stdFullTime) / float64(scanFullTime),
			SkipRatio:           0,
			SymbolsScannedRatio: 1,
			AllocsPerOp:         allocsPerOp(scanFullFn),
			BaselineAllocsPerOp: allocsPerOp(stdFullFn),
		})
	}

	// Runtime-collector overhead: the same streaming cast with the go_*
	// health sampler ticking at a deliberately hostile cadence (10ms; the
	// production default is 10s) versus no sampler at all. NsPerOp is the
	// sampled run, BaselineNsPerOp the quiet one, so Speedup ≈ 1.0 is the
	// tracked property — the observability tax on the validate path must
	// stay in the noise. No alloc columns: testing.AllocsPerRun counts
	// process-wide allocations, and the concurrent sampler would pollute
	// them.
	{
		data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 11}))
		sc, err := stream.NewCaster(ps.Source1, ps.Target)
		if err != nil {
			fatal(err)
		}
		castFn := func() {
			if _, err := sc.Validate(bytes.NewReader(data)); err != nil {
				fatal(err)
			}
		}
		quietTime := timeIt(castFn)
		col := telemetry.NewRuntimeCollector(telemetry.NewRegistry(), 10*time.Millisecond)
		col.Start()
		sampledTime := timeIt(castFn)
		col.Stop()
		out = append(out, benchScenario{
			Name:                "stream-cast-runtime-sampler-500",
			NsPerOp:             sampledTime.Nanoseconds(),
			BaselineNsPerOp:     quietTime.Nanoseconds(),
			Speedup:             float64(quietTime) / float64(sampledTime),
			SkipRatio:           0,
			SymbolsScannedRatio: 1,
		})
	}

	// Exemplar-recording overhead: the same streaming cast observing its
	// latency into a histogram with a trace exemplar attached (what every
	// traced request pays on castd's latency path) versus the plain
	// observation (what untraced requests pay). NsPerOp is the exemplar
	// run, BaselineNsPerOp the plain one, so Speedup ≈ 1.0 is the tracked
	// property: one heap-allocated Exemplar and an atomic pointer store
	// per observation must stay in the noise next to a 500-item cast.
	{
		data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 11}))
		sc, err := stream.NewCaster(ps.Source1, ps.Target)
		if err != nil {
			fatal(err)
		}
		met := telemetry.NewRegistry()
		plain := met.Histogram("bench_cast_plain_seconds", "plain path", telemetry.DefBuckets())
		exemplar := met.Histogram("bench_cast_exemplar_seconds", "exemplar path", telemetry.DefBuckets())
		const traceID, spanID = "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7"
		plainFn := func() {
			start := time.Now()
			if _, err := sc.Validate(bytes.NewReader(data)); err != nil {
				fatal(err)
			}
			plain.Observe(time.Since(start).Seconds())
		}
		exemplarFn := func() {
			start := time.Now()
			if _, err := sc.Validate(bytes.NewReader(data)); err != nil {
				fatal(err)
			}
			exemplar.ObserveExemplar(time.Since(start).Seconds(), traceID, spanID, time.Now())
		}
		plainTime := timeIt(plainFn)
		exemplarTime := timeIt(exemplarFn)
		out = append(out, benchScenario{
			Name:                "stream-cast-exemplars-500",
			NsPerOp:             exemplarTime.Nanoseconds(),
			BaselineNsPerOp:     plainTime.Nanoseconds(),
			Speedup:             float64(plainTime) / float64(exemplarTime),
			SkipRatio:           0,
			SymbolsScannedRatio: 1,
			AllocsPerOp:         allocsPerOp(exemplarFn),
			BaselineAllocsPerOp: allocsPerOp(plainFn),
		})
	}

	// Resilience-guard overhead: the same streaming cast with the full
	// per-operation guard sequence a clustered cast pays on a healthy
	// peer path — breaker admission check, retry-budget deposit, success
	// record, latency observation, and the hedge-delay percentile read —
	// versus the bare cast. NsPerOp is the guarded run, BaselineNsPerOp
	// the bare one, so Speedup ≈ 1.0 is the tracked property: a few
	// mutex-guarded counter updates must stay invisible next to a
	// 500-item cast, and the guard must not allocate (the percentile
	// read sorts into a stack array, the breaker window is a fixed ring).
	{
		data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 11}))
		sc, err := stream.NewCaster(ps.Source1, ps.Target)
		if err != nil {
			fatal(err)
		}
		br := resilience.NewBreaker(resilience.BreakerConfig{})
		budget := resilience.NewBudget(0, 0)
		lat := &resilience.LatencyTracker{}
		bareFn := func() {
			if _, err := sc.Validate(bytes.NewReader(data)); err != nil {
				fatal(err)
			}
		}
		guardedFn := func() {
			if !br.Allow() {
				fatal(fmt.Errorf("breaker opened on an all-success run"))
			}
			budget.Deposit()
			start := time.Now()
			if _, err := sc.Validate(bytes.NewReader(data)); err != nil {
				fatal(err)
			}
			br.Record(true)
			lat.Observe(time.Since(start))
			if lat.Percentile(0.95) < 0 {
				fatal(fmt.Errorf("negative latency percentile"))
			}
		}
		bareTime := timeIt(bareFn)
		guardedTime := timeIt(guardedFn)
		out = append(out, benchScenario{
			Name:                "stream-cast-resilience-guard-500",
			NsPerOp:             guardedTime.Nanoseconds(),
			BaselineNsPerOp:     bareTime.Nanoseconds(),
			Speedup:             float64(bareTime) / float64(guardedTime),
			SkipRatio:           0,
			SymbolsScannedRatio: 1,
			AllocsPerOp:         allocsPerOp(guardedFn),
			BaselineAllocsPerOp: allocsPerOp(bareFn),
		})
	}

	// Cold vs. warm registry startup: acquiring one compiled pair by
	// compiling it (universe load + relation fixpoints + IDA construction)
	// versus loading its artifact blob from disk (read + decode + schema
	// re-parse + fingerprint check). The warm path is what castd pays per
	// pair after a restart with -artifact-dir.
	out = append(out, artifactStartupRow())

	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "castbench: wrote %d scenarios to %s\n", len(out), path)
}

// artifactStartupRow times the registry-cold-vs-warm-start scenario on a
// scaled catalog pair (48 section types a side), large enough that the
// quadratic per-pair work — the R_sub/R_dis fixpoint plus IDA construction
// — shows over the per-schema compile both paths share. NsPerOp is the
// warm path (artifact store load: disk read + decode + deterministic
// schema re-parse + fingerprint check); BaselineNsPerOp is the cold path
// (full pair compile); Speedup is the warm restart's advantage, and it
// grows with schema size because only the pair work is skipped. The
// work-ratio columns are neutral — no document is validated here.
func artifactStartupRow() benchScenario {
	srcText, dstText := wgen.ScaledXSD(48, true, 100), wgen.ScaledXSD(48, false, 100)
	info := func(text string) artifact.SchemaInfo {
		h := sha256.Sum256([]byte("xsd\x00\x00" + text))
		return artifact.SchemaInfo{Format: "xsd", Text: text, Hash: hex.EncodeToString(h[:])}
	}
	srcInfo, dstInfo := info(srcText), info(dstText)

	compileOnce := func() *revalidate.Caster {
		u := revalidate.NewUniverse()
		ss, err := u.LoadXSDString(srcText)
		if err != nil {
			fatal(err)
		}
		ds, err := u.LoadXSDString(dstText)
		if err != nil {
			fatal(err)
		}
		c, _, err := revalidate.NewCasterPair(ss, ds)
		if err != nil {
			fatal(err)
		}
		return c
	}
	coldTime := timeIt(func() { compileOnce() })

	dir, err := os.MkdirTemp("", "castbench-artifacts-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := artifact.OpenStore(dir, nil)
	if err != nil {
		fatal(err)
	}
	caster := compileOnce()
	blob, err := artifact.Encode(srcInfo, dstInfo, caster, caster.Report())
	if err != nil {
		fatal(err)
	}
	key := artifact.Key(srcInfo.Hash, dstInfo.Hash)
	if err := store.Put(key, blob); err != nil {
		fatal(err)
	}
	warmTime := timeIt(func() {
		if _, err := store.LoadPair(key); err != nil {
			fatal(err)
		}
	})

	return benchScenario{
		Name:                "registry-cold-vs-warm-start",
		NsPerOp:             warmTime.Nanoseconds(),
		BaselineNsPerOp:     coldTime.Nanoseconds(),
		Speedup:             float64(coldTime) / float64(warmTime),
		SkipRatio:           0,
		SymbolsScannedRatio: 1,
	}
}

// treeRow times one tree-engine scenario against the full baseline and
// derives the work ratios from the two Stats.
func treeRow(name string, engine *cast.Engine, base *baseline.Validator, doc *xmltree.Node) benchScenario {
	castTime := timeIt(func() {
		if _, err := engine.Validate(doc); err != nil {
			fatal(err)
		}
	})
	fullTime := timeIt(func() {
		if _, err := base.Validate(doc); err != nil {
			fatal(err)
		}
	})
	cs, err := engine.Validate(doc)
	if err != nil {
		fatal(err)
	}
	bs, err := base.Validate(doc)
	if err != nil {
		fatal(err)
	}
	return benchScenario{
		Name:                name,
		NsPerOp:             castTime.Nanoseconds(),
		BaselineNsPerOp:     fullTime.Nanoseconds(),
		Speedup:             float64(fullTime) / float64(castTime),
		SkipRatio:           cs.WorkSavedRatio(bs.NodesVisited()),
		SymbolsScannedRatio: cs.SymbolsScannedRatio(),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "castbench:", err)
	os.Exit(1)
}
