// Command otlpsink is a minimal OTLP/HTTP collector for smoke tests and
// local development: it accepts the JSON export requests castd's
// -otlp-endpoint emits (POST /v1/traces and /v1/metrics), accumulates
// what it saw, and reports the totals as JSON on GET /summary so a shell
// script can assert "the span made it" without a real collector.
//
// Usage:
//
//	otlpsink -addr :4318
//	otlpsink -addr :4318 -fail-first 3   # answer 503 + Retry-After to the
//	                                     # first 3 exports, then recover —
//	                                     # exercises the exporter's backoff
//
//	curl localhost:4318/summary
//
// The summary's traceIds list is the cross-check for exemplar smoke
// tests: every id is a trace the sink actually received, so an exemplar
// trace id scraped from castd's /metrics must appear in it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
)

// payload is the union of both OTLP/JSON export request shapes; only the
// fields the summary reports are decoded.
type payload struct {
	ResourceSpans []struct {
		ScopeSpans []struct {
			Spans []struct {
				TraceID string `json:"traceId"`
				Name    string `json:"name"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
	ResourceMetrics []struct {
		ScopeMetrics []struct {
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		} `json:"scopeMetrics"`
	} `json:"resourceMetrics"`
}

type sink struct {
	failFirst int64

	mu        sync.Mutex
	requests  int64
	failed    int64
	spanCount int64
	spanNames map[string]int64
	traceIDs  map[string]bool
	metrics   map[string]bool
}

// summary is the GET /summary body.
type summary struct {
	Requests  int64            `json:"requests"`
	Failed    int64            `json:"failed"`
	Spans     int64            `json:"spans"`
	SpanNames map[string]int64 `json:"spanNames"`
	TraceIDs  []string         `json:"traceIds"`
	Metrics   []string         `json:"metrics"`
}

func (s *sink) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var p payload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	if s.failed < s.failFirst {
		s.failed++
		// A short Retry-After keeps the smoke test fast while still
		// proving the exporter honors the header.
		w.Header().Set("Retry-After", "0.2")
		http.Error(w, "injected failure", http.StatusServiceUnavailable)
		return
	}
	for _, rs := range p.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				s.spanCount++
				s.spanNames[sp.Name]++
				s.traceIDs[sp.TraceID] = true
			}
		}
	}
	for _, rm := range p.ResourceMetrics {
		for _, sm := range rm.ScopeMetrics {
			for _, m := range sm.Metrics {
				s.metrics[m.Name] = true
			}
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (s *sink) handleSummary(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := summary{
		Requests:  s.requests,
		Failed:    s.failed,
		Spans:     s.spanCount,
		SpanNames: make(map[string]int64, len(s.spanNames)),
		TraceIDs:  make([]string, 0, len(s.traceIDs)),
		Metrics:   make([]string, 0, len(s.metrics)),
	}
	for k, v := range s.spanNames {
		out.SpanNames[k] = v
	}
	for id := range s.traceIDs {
		out.TraceIDs = append(out.TraceIDs, id)
	}
	for m := range s.metrics {
		out.Metrics = append(out.Metrics, m)
	}
	s.mu.Unlock()
	sort.Strings(out.TraceIDs)
	sort.Strings(out.Metrics)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func main() {
	addr := flag.String("addr", ":4318", "listen address")
	failFirst := flag.Int64("fail-first", 0, "answer 503 + Retry-After to this many export requests before accepting")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: otlpsink [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	s := &sink{
		failFirst: *failFirst,
		spanNames: map[string]int64{},
		traceIDs:  map[string]bool{},
		metrics:   map[string]bool{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/traces", s.handleExport)
	mux.HandleFunc("/v1/metrics", s.handleExport)
	mux.HandleFunc("/summary", s.handleSummary)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("otlpsink: listen %s: %v", *addr, err)
	}
	log.Printf("otlpsink: listening on %s (fail-first=%d)", ln.Addr(), *failFirst)
	log.Fatal(http.Serve(ln, mux))
}
