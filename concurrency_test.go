package revalidate

// Concurrency tests for the lock-free cast hot path: run with -race. They
// share one Caster / StreamCaster across goroutines, including engines
// whose content-model casters are NOT precomputed, so the copy-on-write
// overflow publication path is raced too.

import (
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentValidateOnDemandCasters races the overflow path: with
// relations disabled the engine descends into subsumed pairs, whose
// casters are skipped by the eager precompute and therefore built on
// demand under full contention.
func TestConcurrentValidateOnDemandCasters(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	caster, err := NewCaster(src, dst, WithoutRelations())
	if err != nil {
		t.Fatal(err)
	}
	xml := poDocXML(30, true)
	var wg sync.WaitGroup
	for w := 0; w < 2*runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			doc, err := ParseDocumentString(xml)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 10; i++ {
				if err := caster.Validate(doc); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentStreamCasterShared races streaming validations on one
// shared StreamCaster (each goroutine owns its readers; the caster's
// automata tables are the shared state under test).
func TestConcurrentStreamCasterShared(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	sc, err := NewStreamCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	xml := poDocXML(30, true)
	var wg sync.WaitGroup
	for w := 0; w < 2*runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := sc.Validate(strings.NewReader(xml)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestValidateAllMatchesSerial checks the batch API end to end: verdicts
// land in the right slots and the atomically merged totals equal the sum
// of serial runs, at several worker counts.
func TestValidateAllMatchesSerial(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	caster, err := NewCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	const badAt = 7 // billTo-less document: must fail the cast
	docs := make([]*Document, n)
	var wantStats Stats
	wantErrs := make([]bool, n)
	for i := range docs {
		doc, err := ParseDocumentString(poDocXML(5+i%4, i != badAt))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = doc
		st, serr := caster.ValidateStats(doc)
		wantStats.Add(st)
		wantErrs[i] = serr != nil
	}
	if !wantErrs[badAt] {
		t.Fatal("premise broken: the billTo-less document should fail serially")
	}
	for _, workers := range []int{0, 1, 2, runtime.GOMAXPROCS(0)} {
		errs, st := caster.ValidateAll(docs, workers)
		if len(errs) != n {
			t.Fatalf("workers=%d: want %d verdicts, got %d", workers, n, len(errs))
		}
		for i, e := range errs {
			if (e != nil) != wantErrs[i] {
				t.Fatalf("workers=%d: verdict mismatch at %d: %v", workers, i, e)
			}
		}
		if st != wantStats {
			t.Fatalf("workers=%d: merged stats %+v != serial sum %+v", workers, st, wantStats)
		}
	}
}

// TestStreamValidateAll checks the streaming batch API, including error
// slotting for an invalid document in the middle of the batch.
func TestStreamValidateAll(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	sc, err := NewStreamCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	good := poDocXML(10, true)
	bad := poDocXML(10, false)
	const n = 16
	const badAt = 5
	rs := make([]io.Reader, n)
	for i := range rs {
		if i == badAt {
			rs[i] = strings.NewReader(bad)
		} else {
			rs[i] = strings.NewReader(good)
		}
	}
	errs, st := sc.ValidateAll(rs, 4)
	for i, e := range errs {
		if i == badAt && e == nil {
			t.Fatal("billTo-less stream must fail")
		}
		if i != badAt && e != nil {
			t.Fatalf("stream %d should pass: %v", i, e)
		}
	}
	if st.ElementsVisited == 0 || st.ElementsSkimmed == 0 {
		t.Fatalf("batch stats should aggregate work: %+v", st)
	}
}

// TestValidateAllConcurrentBatches runs several ValidateAll batches at
// once on one caster — the broker shape under -race.
func TestValidateAllConcurrentBatches(t *testing.T) {
	_, src, dst := loadPaperPair(t)
	caster, err := NewCaster(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocumentString(poDocXML(20, true))
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*Document, 32)
	for i := range docs {
		docs[i] = doc // validation is read-only: sharing the tree is legal
	}
	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs, _ := caster.ValidateAll(docs, 3)
			for _, e := range errs {
				if e != nil {
					t.Error(e)
					return
				}
			}
		}()
	}
	wg.Wait()
}
