package revalidate

import (
	"fmt"
	"runtime/debug"

	"repro/internal/stream"
)

// Limits bounds the resources one streaming validation may consume; the
// zero value is unlimited. See the field docs in internal/stream.
type Limits = stream.Limits

// LimitError reports a document that exceeded a configured resource limit
// (depth or element count). Retrieve it with errors.As to distinguish
// resource-governance rejections from ordinary invalid-document verdicts.
type LimitError = stream.LimitError

// PanicError is the verdict of a batch slot whose validation panicked: the
// batch APIs contain a panicking worker to its own document (recording the
// recovered value and stack) instead of crashing the process, so one
// poisoned input — or one engine bug it tickles — cannot take down a
// daemon fanning thousands of sibling documents over the same pool.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("validation panic: %v", e.Value)
}

// guardValidate runs one document's validation under a panic guard,
// converting a panic into a *PanicError verdict. The stats type is generic
// so both the tree and streaming batch pools share one guard.
func guardValidate[S any](body func() (S, error)) (st S, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return body()
}
