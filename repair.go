package revalidate

import (
	"repro/internal/repair"
)

// Repairer automatically corrects documents valid under a source schema so
// that they conform to a target schema — the extension the paper names as
// future work (§7). Corrections are minimal per content model (an
// automaton-constrained edit distance chooses the fewest insert/delete/
// relabel operations), missing mandatory content is synthesized as minimal
// valid subtrees, and out-of-range simple values are clamped toward the
// nearest facet bound.
type Repairer struct {
	src, dst *Schema
	r        *repair.Repairer
}

// NewRepairer preprocesses a (source, target) schema pair for repair. Both
// schemas must come from the same Universe.
func NewRepairer(src, dst *Schema) (*Repairer, error) {
	if err := sameUniverse(src, dst); err != nil {
		return nil, err
	}
	r, err := repair.New(src.s, dst.s)
	if err != nil {
		return nil, err
	}
	return &Repairer{src: src, dst: dst, r: r}, nil
}

// RepairReport summarizes the edits a repair applied.
type RepairReport struct {
	Relabels   int
	Inserts    int
	Deletes    int
	ValueFixes int
}

// Total returns the total number of edit operations applied.
func (r RepairReport) Total() int {
	return r.Relabels + r.Inserts + r.Deletes + r.ValueFixes
}

// Repair edits doc — assumed valid under the source schema — in place so
// that it becomes valid under the target schema. The returned ChangeSet
// localizes the edits, so the result can be revalidated incrementally
// (Caster.ValidateModified) or serialized directly. An already-valid
// document is returned untouched with an empty report.
//
// The document root's label must be a permitted root of the target schema;
// repairs never relabel the root.
func (r *Repairer) Repair(doc *Document) (*ChangeSet, RepairReport, error) {
	tk, rep, err := r.r.Repair(doc.root)
	report := RepairReport{
		Relabels:   rep.Relabels,
		Inserts:    rep.Inserts,
		Deletes:    rep.Deletes,
		ValueFixes: rep.ValueFixes,
	}
	if err != nil {
		return nil, report, err
	}
	return &ChangeSet{trie: tk.Finalize()}, report, nil
}
