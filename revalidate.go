// Package revalidate is an efficient schema-based revalidator for XML: an
// implementation of Raghavachari & Shmueli, "Efficient Schema-Based
// Revalidation of XML" (EDBT 2004).
//
// The library answers the schema cast validation question: given an XML
// document already known to be valid with respect to a source schema,
// is it valid with respect to a target schema? Instead of revalidating
// from scratch, a Caster preprocesses the two schemas — computing which
// type pairs are subsumed (every source-valid subtree is target-valid) or
// disjoint (no tree is valid for both), and deriving immediate decision
// automata for content models — and then validates documents while
// skipping subsumed subtrees and rejecting at the first disjoint pair.
// For schema pairs that differ locally, validation cost becomes
// proportional to the difference between the schemas rather than to
// document size.
//
// The same machinery handles documents edited between validations
// (schema cast with modifications): edits are Δ-encoded through an
// EditSession, a Dewey-number trie localizes the changed regions, and
// untouched subtrees fall back to the plain cast.
//
// # Quick start
//
//	u := revalidate.NewUniverse()
//	src, _ := u.LoadXSDString(sourceXSD) // billTo optional
//	dst, _ := u.LoadXSDString(targetXSD) // billTo required
//	caster, _ := revalidate.NewCaster(src, dst)
//
//	doc, _ := revalidate.ParseDocumentString(poXML)
//	if err := caster.Validate(doc); err != nil {
//	    // not valid under the target schema
//	}
//
// Schemas that will be compared must be loaded through one Universe, which
// interns element labels into a shared symbol space.
package revalidate

import (
	"fmt"
	"io"

	"repro/internal/dtd"
	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/xsd"
)

// Universe is the label-interning scope shared by schemas that are to be
// compared or cast between. All schemas of one Universe share an alphabet.
type Universe struct {
	alpha *fa.Alphabet
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{alpha: fa.NewAlphabet()}
}

// Schema is a compiled abstract XML schema (the paper's (Σ, T, ρ, R)
// formalism) bound to its universe.
type Schema struct {
	u *Universe
	s *schema.Schema
}

// LoadXSD loads a W3C XML Schema document. See the supported-subset note
// in the package documentation: the structural core (elements, sequence/
// choice/all groups, occurrence bounds, simple-type restriction facets) is
// supported; attributes are ignored and schema features outside the
// paper's formalism are rejected with descriptive errors.
func (u *Universe) LoadXSD(r io.Reader) (*Schema, error) {
	s, err := xsd.Parse(r, xsd.Options{Alpha: u.alpha})
	if err != nil {
		return nil, err
	}
	return &Schema{u: u, s: s}, nil
}

// LoadXSDString loads an XSD document held in a string.
func (u *Universe) LoadXSDString(src string) (*Schema, error) {
	s, err := xsd.ParseString(src, xsd.Options{Alpha: u.alpha})
	if err != nil {
		return nil, err
	}
	return &Schema{u: u, s: s}, nil
}

// LoadDTD loads a Document Type Definition. root, when non-empty, fixes
// the document root element; otherwise a <!DOCTYPE> wrapper (if present)
// decides, and failing that every declared element may be a root.
func (u *Universe) LoadDTD(src, root string) (*Schema, error) {
	s, err := dtd.Parse(src, dtd.Options{Alpha: u.alpha, Root: root})
	if err != nil {
		return nil, err
	}
	return &Schema{u: u, s: s}, nil
}

// Universe returns the universe the schema was loaded into.
func (s *Schema) Universe() *Universe { return s.u }

// IsDTD reports whether the schema is DTD-shaped: every element label has
// the same type in every context. The DTD label-index optimization
// (Caster.ValidateIndexed) requires this of both schemas.
func (s *Schema) IsDTD() bool { return s.s.IsDTD() }

// TypeNames returns the names of all declared types.
func (s *Schema) TypeNames() []string {
	out := make([]string, len(s.s.Types))
	for i, t := range s.s.Types {
		out[i] = t.Name
	}
	return out
}

// String renders the schema as an abstract-schema table (in the style of
// the paper's Table 1).
func (s *Schema) String() string { return s.s.String() }

// Validate fully validates a document against the schema (no source-schema
// knowledge — the paper's doValidate). For revalidation of documents with
// a known source schema, use a Caster instead.
func (s *Schema) Validate(doc *Document) error {
	return s.s.Validate(doc.root)
}

// sameUniverse guards binary operations across schemas.
func sameUniverse(a, b *Schema) error {
	if a.u != b.u {
		return fmt.Errorf("revalidate: schemas belong to different universes; load both through one Universe")
	}
	return nil
}
