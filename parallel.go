package revalidate

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// batchWorkers resolves a requested worker count against a batch size:
// workers <= 0 means one worker per logical CPU, and the pool never
// exceeds the number of items.
func batchWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runWorkers runs body on a pool of workers. Each body draws item indexes
// in [0, n) from one shared atomic counter until the batch is drained, so
// uneven per-item cost balances across the pool without any queue or lock.
// With one worker, body runs on the calling goroutine; an empty batch runs
// nothing at all.
func runWorkers(n, workers int, body func(claim func() (int, bool))) {
	if n == 0 {
		return
	}
	workers = batchWorkers(n, workers)
	var next atomic.Int64
	claim := func() (int, bool) {
		i := int(next.Add(1)) - 1
		return i, i < n
	}
	if workers == 1 {
		body(claim)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			body(claim)
		}()
	}
	wg.Wait()
}

// Add accumulates d into s (single-goroutine use); callers serving many
// validations merge per-request stats into cumulative totals with it.
// MaxDepth merges with max, not sum.
func (s *Stats) Add(d Stats) {
	s.ElementsVisited += d.ElementsVisited
	s.TextNodesVisited += d.TextNodesVisited
	s.AutomatonSteps += d.AutomatonSteps
	s.SymbolsSkipped += d.SymbolsSkipped
	s.SubsumedSkips += d.SubsumedSkips
	s.DisjointRejects += d.DisjointRejects
	s.FullValidations += d.FullValidations
	s.ReverseScans += d.ReverseScans
	if d.MaxDepth > s.MaxDepth {
		s.MaxDepth = d.MaxDepth
	}
}

// atomicAdd merges d into s with atomic adds; workers call it once with
// their local totals, so a batch's statistics need no mutex.
func (s *Stats) atomicAdd(d Stats) {
	atomic.AddInt64(&s.ElementsVisited, d.ElementsVisited)
	atomic.AddInt64(&s.TextNodesVisited, d.TextNodesVisited)
	atomic.AddInt64(&s.AutomatonSteps, d.AutomatonSteps)
	atomic.AddInt64(&s.SymbolsSkipped, d.SymbolsSkipped)
	atomic.AddInt64(&s.SubsumedSkips, d.SubsumedSkips)
	atomic.AddInt64(&s.DisjointRejects, d.DisjointRejects)
	atomic.AddInt64(&s.FullValidations, d.FullValidations)
	atomic.AddInt64(&s.ReverseScans, d.ReverseScans)
	atomicMax(&s.MaxDepth, d.MaxDepth)
}

// atomicMax raises *addr to v via CAS (no-op when v is not larger).
func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// Add accumulates d into s (single-goroutine use); callers serving many
// validations merge per-request stats into cumulative totals with it.
// MaxDepth merges with max, not sum.
func (s *StreamStats) Add(d StreamStats) {
	s.ElementsVisited += d.ElementsVisited
	s.ElementsSkimmed += d.ElementsSkimmed
	s.AutomatonSteps += d.AutomatonSteps
	s.SymbolsSkipped += d.SymbolsSkipped
	s.SubsumedSkips += d.SubsumedSkips
	s.DisjointRejects += d.DisjointRejects
	s.ValuesChecked += d.ValuesChecked
	if d.MaxDepth > s.MaxDepth {
		s.MaxDepth = d.MaxDepth
	}
}

// atomicAdd merges d into s with atomic adds.
func (s *StreamStats) atomicAdd(d StreamStats) {
	atomic.AddInt64(&s.ElementsVisited, d.ElementsVisited)
	atomic.AddInt64(&s.ElementsSkimmed, d.ElementsSkimmed)
	atomic.AddInt64(&s.AutomatonSteps, d.AutomatonSteps)
	atomic.AddInt64(&s.SymbolsSkipped, d.SymbolsSkipped)
	atomic.AddInt64(&s.SubsumedSkips, d.SubsumedSkips)
	atomic.AddInt64(&s.DisjointRejects, d.DisjointRejects)
	atomic.AddInt64(&s.ValuesChecked, d.ValuesChecked)
	atomicMax(&s.MaxDepth, d.MaxDepth)
}
