package revalidate

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// batchWorkers resolves a requested worker count against a batch size:
// workers <= 0 means one worker per logical CPU, and the pool never
// exceeds the number of items.
func batchWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runWorkers runs body on a pool of workers. Each body draws item indexes
// in [0, n) from one shared atomic counter until the batch is drained, so
// uneven per-item cost balances across the pool without any queue or lock.
// With one worker, body runs on the calling goroutine; an empty batch runs
// nothing at all.
func runWorkers(n, workers int, body func(claim func() (int, bool))) {
	if n == 0 {
		return
	}
	workers = batchWorkers(n, workers)
	var next atomic.Int64
	claim := func() (int, bool) {
		i := int(next.Add(1)) - 1
		return i, i < n
	}
	if workers == 1 {
		body(claim)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			body(claim)
		}()
	}
	wg.Wait()
}

// Add accumulates d into s (single-goroutine use); callers serving many
// validations merge per-request stats into cumulative totals with it.
func (s *Stats) Add(d Stats) {
	s.ElementsVisited += d.ElementsVisited
	s.TextNodesVisited += d.TextNodesVisited
	s.AutomatonSteps += d.AutomatonSteps
	s.SubsumedSkips += d.SubsumedSkips
	s.DisjointRejects += d.DisjointRejects
	s.FullValidations += d.FullValidations
}

// atomicAdd merges d into s with atomic adds; workers call it once with
// their local totals, so a batch's statistics need no mutex.
func (s *Stats) atomicAdd(d Stats) {
	atomic.AddInt64(&s.ElementsVisited, d.ElementsVisited)
	atomic.AddInt64(&s.TextNodesVisited, d.TextNodesVisited)
	atomic.AddInt64(&s.AutomatonSteps, d.AutomatonSteps)
	atomic.AddInt64(&s.SubsumedSkips, d.SubsumedSkips)
	atomic.AddInt64(&s.DisjointRejects, d.DisjointRejects)
	atomic.AddInt64(&s.FullValidations, d.FullValidations)
}

// Add accumulates d into s (single-goroutine use); callers serving many
// validations merge per-request stats into cumulative totals with it.
func (s *StreamStats) Add(d StreamStats) {
	s.ElementsProcessed += d.ElementsProcessed
	s.ElementsSkimmed += d.ElementsSkimmed
	s.AutomatonSteps += d.AutomatonSteps
	s.ValuesChecked += d.ValuesChecked
}

// atomicAdd merges d into s with atomic adds.
func (s *StreamStats) atomicAdd(d StreamStats) {
	atomic.AddInt64(&s.ElementsProcessed, d.ElementsProcessed)
	atomic.AddInt64(&s.ElementsSkimmed, d.ElementsSkimmed)
	atomic.AddInt64(&s.AutomatonSteps, d.AutomatonSteps)
	atomic.AddInt64(&s.ValuesChecked, d.ValuesChecked)
}
