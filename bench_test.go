// Benchmarks regenerating the paper's evaluation (EDBT'04 §6): one
// benchmark family per table/figure, plus the ablations DESIGN.md calls
// out. `go test -bench=. -benchmem` prints the series; `cmd/castbench`
// renders the same data as paper-style tables.
package revalidate_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"bytes"

	revalidate "repro"
	"repro/internal/baseline"
	"repro/internal/cast"
	"repro/internal/fa"
	"repro/internal/regexpsym"

	"repro/internal/strcast"
	"repro/internal/stream"
	"repro/internal/subsume"
	"repro/internal/update"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

// --- Table 2: input document file sizes --------------------------------

// BenchmarkTable2Serialize measures document generation + serialization at
// the paper's item counts; the reported bytes/op are the Table 2 sizes.
func BenchmarkTable2Serialize(b *testing.B) {
	for _, n := range wgen.PaperItemCounts {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, Seed: 2004})
			size := len(wgen.POXMLBytes(doc))
			b.ReportMetric(float64(size), "filebytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = wgen.POXMLBytes(doc)
			}
		})
	}
}

// --- Figure 3a: Experiment 1 -------------------------------------------

// BenchmarkExperiment1 validates Figure-1a documents (billTo present,
// optional in the source) against the Figure-2 target (billTo required).
// The cast series is expected flat in item count; the full series linear.
func BenchmarkExperiment1(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	engine := cast.MustNew(ps.Source1, ps.Target, cast.Options{})
	base := baseline.New(ps.Target)
	for _, n := range wgen.PaperItemCounts {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, Seed: 2004})
		b.Run(fmt.Sprintf("cast/items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Validate(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("full/items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := base.Validate(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 3b: Experiment 2 -------------------------------------------

// BenchmarkExperiment2 validates maxExclusive=200 documents (quantities all
// < 100) against the maxExclusive=100 target: every quantity value must be
// read, so both series are linear; the cast skips the other item children.
func BenchmarkExperiment2(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	engine := cast.MustNew(ps.Source2, ps.Target, cast.Options{})
	base := baseline.New(ps.Target)
	for _, n := range wgen.PaperItemCounts {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, MaxQuantity: 99, Seed: 2004})
		b.Run(fmt.Sprintf("cast/items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Validate(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("full/items=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := base.Validate(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 3: nodes visited in Experiment 2 ----------------------------

// BenchmarkTable3NodesVisited reports the nodes-visited metric per
// validation as a custom benchmark metric (nodes/op) for both validators.
func BenchmarkTable3NodesVisited(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	engine := cast.MustNew(ps.Source2, ps.Target, cast.Options{})
	base := baseline.New(ps.Target)
	for _, n := range wgen.PaperItemCounts {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, MaxQuantity: 99, Seed: 2004})
		b.Run(fmt.Sprintf("cast/items=%d", n), func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				st, err := engine.Validate(doc)
				if err != nil {
					b.Fatal(err)
				}
				nodes = st.NodesVisited()
			}
			b.ReportMetric(float64(nodes), "nodes/op")
		})
		b.Run(fmt.Sprintf("full/items=%d", n), func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				st, err := base.Validate(doc)
				if err != nil {
					b.Fatal(err)
				}
				nodes = st.NodesVisited()
			}
			b.ReportMetric(float64(nodes), "nodes/op")
		})
	}
}

// --- Ablation: §4 content IDAs on/off ----------------------------------

// BenchmarkContentIDAAblation compares the full engine against the
// paper's modified-Xerces configuration (relations only, plain DFA scans
// for content models).
func BenchmarkContentIDAAblation(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	withIDA := cast.MustNew(ps.Source2, ps.Target, cast.Options{})
	withoutIDA := cast.MustNew(ps.Source2, ps.Target, cast.Options{DisableContentIDA: true})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, MaxQuantity: 99, Seed: 5})
	b.Run("with-content-IDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := withIDA.Validate(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plain-DFA-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := withoutIDA.Validate(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: §3.4 DTD label index ------------------------------------

// BenchmarkDTDLabelIndex compares the generic top-down cast against the
// label-indexed variant (index build amortized and also measured alone).
func BenchmarkDTDLabelIndex(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	engine := cast.MustNew(ps.Source2, ps.Target, cast.Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, MaxQuantity: 99, Seed: 6})
	idx := cast.BuildLabelIndex(doc)
	b.Run("top-down", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Validate(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("label-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.ValidateDTD(doc, idx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cast.BuildLabelIndex(doc)
		}
	})
}

// --- §3.3 / §4.3: incremental revalidation after edits ------------------

// BenchmarkModifiedRevalidation measures schema cast with modifications at
// growing edit counts against full revalidation of the edited document.
func BenchmarkModifiedRevalidation(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	engine := cast.MustNew(ps.Target, ps.Target, cast.Options{})
	base := baseline.New(ps.Target)
	for _, edits := range []int{1, 8, 64} {
		doc := wgen.PODocument(wgen.PODocOptions{Items: 1000, IncludeBillTo: true, Seed: 7})
		tk := update.NewTracker(doc)
		items := doc.Children[2].Children
		for i := 0; i < edits; i++ {
			qty := items[(i*37)%len(items)].Children[1].Children[0]
			if err := tk.SetText(qty, "7"); err != nil {
				b.Fatal(err)
			}
		}
		trie := tk.Finalize()
		b.Run(fmt.Sprintf("incremental/edits=%d", edits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.ValidateModified(doc, trie); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("full/edits=%d", edits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := base.Validate(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §4: string-level IDA vs plain rescan ------------------------------

// BenchmarkIDAvsPlainScan sweeps string length for casting strings in L(a)
// against b with the immediate decision automaton (which decides after a
// bounded prefix here) versus a full rescan with b.
func BenchmarkIDAvsPlainScan(b *testing.B) {
	alpha := fa.NewAlphabet()
	// Source: x (y | z)*; target: x y* — verdict is forced at the first z
	// or, absent z, only at the end; on all-y strings the IDA immediately
	// accepts after 1 symbol because L(q) coincides.
	a := regexpsym.Compile(regexpsym.MustParse("x, (y)*"), alpha)
	t := regexpsym.Compile(regexpsym.MustParse("x, y*"), alpha)
	caster := strcast.New(a, t)
	for _, n := range []int{10, 1000, 100000} {
		word := make([]fa.Symbol, 0, n+1)
		word = append(word, alpha.Lookup("x"))
		for i := 0; i < n; i++ {
			word = append(word, alpha.Lookup("y"))
		}
		b.Run(fmt.Sprintf("ida/len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := caster.Validate(word); !res.Accepted {
					b.Fatal("should accept")
				}
			}
		})
		b.Run(fmt.Sprintf("rescan/len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !t.Accepts(word) {
					b.Fatal("should accept")
				}
			}
		})
	}
}

// BenchmarkReverseScan measures the §4.3 direction choice: after an append
// at the end of a long string, the reverse-automaton scan touches O(1)
// symbols while a forward rescan touches all of them.
func BenchmarkReverseScan(b *testing.B) {
	alpha := fa.NewAlphabet()
	a := regexpsym.Compile(regexpsym.MustParse("x, y*"), alpha)
	t := regexpsym.Compile(regexpsym.MustParse("x, y*"), alpha)
	caster := strcast.New(a, t)
	for _, n := range []int{100, 10000} {
		base := make([]fa.Symbol, 0, n+2)
		base = append(base, alpha.Lookup("x"))
		for i := 0; i < n; i++ {
			base = append(base, alpha.Lookup("y"))
		}
		ed := strcast.NewEditor(base)
		ed.Append(alpha.Lookup("y"))
		p, q := ed.Bounds()
		b.Run(fmt.Sprintf("reverse/len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := caster.ValidateModified(ed.Original(), ed.Current(), p, q)
				if !res.Accepted || !res.Reversed {
					b.Fatalf("expected reverse-accepted, got %+v", res)
				}
			}
		})
		b.Run(fmt.Sprintf("forward-rescan/len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := caster.ValidateModified(ed.Original(), ed.Current(), 0, 0)
				if !res.Accepted {
					b.Fatal("should accept")
				}
			}
		})
	}
}

// --- Preprocessing costs ------------------------------------------------

// BenchmarkRsubPrecompute measures the one-time static analysis: the
// R_sub/R_dis fixpoints and full engine construction for the paper pair.
func BenchmarkRsubPrecompute(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	b.Run("relations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subsume.MustCompute(ps.Source1, ps.Target)
		}
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cast.MustNew(ps.Source1, ps.Target, cast.Options{})
		}
	})
	b.Run("schema-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wgen.NewPaperSchemas()
		}
	})
}

// --- Supporting micro-benchmarks ----------------------------------------

// BenchmarkParseDocument measures XML parsing into the ordered-tree model.
func BenchmarkParseDocument(b *testing.B) {
	for _, n := range []int{50, 1000} {
		data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, Seed: 8}))
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := xmltree.ParseString(string(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerator measures random valid-document generation (the
// workload generator itself).
func BenchmarkGenerator(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	rng := rand.New(rand.NewSource(9))
	gen := wgen.NewGenerator(ps.Target, rng)
	for i := 0; i < b.N; i++ {
		if _, ok := gen.Document(); !ok {
			b.Fatal("generation failed")
		}
	}
}

// --- Streaming vs tree-based validation ---------------------------------

// BenchmarkStreaming compares tree-building + cast against pure streaming
// validation and streaming cast on serialized input (the broker setting:
// documents arrive as bytes).
func BenchmarkStreaming(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	data := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 10}))
	engine := cast.MustNew(ps.Source1, ps.Target, cast.Options{})
	streamCaster, err := stream.NewCaster(ps.Source1, ps.Target)
	if err != nil {
		b.Fatal(err)
	}
	streamFull := stream.NewValidator(ps.Target)
	b.Run("parse+tree-cast", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			doc, err := xmltree.ParseString(string(data))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Validate(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream-cast", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := streamCaster.Validate(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream-full", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := streamFull.Validate(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Parallel validation: hot-path contention ----------------------------

// BenchmarkParallelCast races goroutines on ONE shared engine over the
// Experiment-1 workload. With the lock-free caster table the per-element
// validate path takes no mutex, so throughput should scale with -cpu
// (vary goroutines with `go test -bench=ParallelCast -cpu=1,2,4,8`).
func BenchmarkParallelCast(b *testing.B) {
	ps := wgen.NewPaperSchemas()
	doc := wgen.PODocument(wgen.PODocOptions{Items: 500, IncludeBillTo: true, Seed: 2004})
	b.Run("tree-cast", func(b *testing.B) {
		engine := cast.MustNew(ps.Source1, ps.Target, cast.Options{})
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := engine.Validate(doc); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	// On-demand pairs only: with relations disabled every content model
	// runs, and subsumed pairs' casters come from the copy-on-write
	// overflow — the path a mutex used to serialize.
	b.Run("tree-cast-on-demand", func(b *testing.B) {
		engine := cast.MustNew(ps.Source1, ps.Target, cast.Options{DisableRelations: true})
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := engine.Validate(doc); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	data := string(wgen.POXMLBytes(doc))
	b.Run("stream-cast", func(b *testing.B) {
		sc, err := stream.NewCaster(ps.Source1, ps.Target)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := sc.Validate(strings.NewReader(data)); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkParallelBatchScaling sweeps the worker count of the public
// batch API: the tracked series is docs/sec at 1→GOMAXPROCS workers
// (cmd/castbench -parallel prints the same curve with speedups). The
// workload is the Experiment-2 pair — every quantity facet must be
// checked, so per-document work is linear in items and the curve reflects
// validation scaling rather than pool overhead (Experiment-1 documents
// cast in O(1), ~140ns, far below per-task dispatch cost).
func BenchmarkParallelBatchScaling(b *testing.B) {
	u := revalidate.NewUniverse()
	src, err := u.LoadXSDString(wgen.Figure2XSD(false, 200))
	if err != nil {
		b.Fatal(err)
	}
	dst, err := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		b.Fatal(err)
	}
	caster, err := revalidate.NewCaster(src, dst)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	docs := make([]*revalidate.Document, batch)
	for i := range docs {
		xmlText := wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{
			Items: 200, IncludeBillTo: true, MaxQuantity: 99, Seed: int64(i)}))
		doc, err := revalidate.ParseDocumentString(string(xmlText))
		if err != nil {
			b.Fatal(err)
		}
		docs[i] = doc
	}
	for workers := 1; ; workers *= 2 {
		if workers > runtime.GOMAXPROCS(0) {
			break
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				errs, _ := caster.ValidateAll(docs, workers)
				for _, e := range errs {
					if e != nil {
						b.Fatal(e)
					}
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// --- Subsumption scaling -------------------------------------------------

// BenchmarkRelationsScaling grows random schema pairs and measures the
// R_sub/R_dis computation, supporting the paper's claim that its subtyping
// is polynomial in schema size (contrast with the exponential regular-tree
// subtyping of XDuce, §2).
func BenchmarkRelationsScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(606))
	for _, types := range []int{8, 16, 32, 64} {
		labels := make([]string, types)
		for i := range labels {
			labels[i] = fmt.Sprintf("l%02d", i)
		}
		alpha := fa.NewAlphabet()
		opts := wgen.RandomSchemaOptions{Labels: labels, SimpleTypes: types / 4, ComplexTypes: types - types/4}
		src := wgen.RandomSchema(rng, alpha, opts)
		dst := wgen.MutateSchema(rng, src, labels)
		b.Run(fmt.Sprintf("types=%d", types), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				subsume.MustCompute(src, dst)
			}
		})
	}
}
