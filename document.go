package revalidate

import (
	"io"
	"strings"

	"repro/internal/schema"
	"repro/internal/xmltree"
)

// Document is a parsed XML document: an ordered labeled tree whose leaves
// may carry simple (text) values.
type Document struct {
	root *xmltree.Node
}

// ParseDocument parses an XML document. Comments and processing
// instructions are discarded; namespaces are flattened to local names;
// whitespace-only text is dropped (insignificant in element content).
func ParseDocument(r io.Reader) (*Document, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Document{root: root}, nil
}

// ParseDocumentString parses an XML document held in a string.
func ParseDocumentString(src string) (*Document, error) {
	return ParseDocument(strings.NewReader(src))
}

// NewDocument builds a document programmatically from element
// constructors; see Element and Text.
func NewDocument(root Elem) *Document {
	return &Document{root: root.n}
}

// WriteXML serializes the document (post-edit view: deleted subtrees are
// omitted). indent, if non-empty, pretty-prints.
func (d *Document) WriteXML(w io.Writer, indent string) error {
	return xmltree.WriteXML(w, d.root, indent)
}

// XML returns the document serialized without indentation.
func (d *Document) XML() string {
	return xmltree.XMLString(d.root)
}

// NodeCount returns the number of nodes (elements and text leaves).
func (d *Document) NodeCount() int { return d.root.Size() }

// Root returns a cursor on the document's root element.
func (d *Document) Root() Elem { return Elem{n: d.root} }

// Clone returns an independent deep copy of the document.
func (d *Document) Clone() *Document {
	return &Document{root: d.root.Clone()}
}

// Elem is a lightweight cursor over a document node. The zero value is
// invalid; obtain cursors from Document.Root, the navigation methods, or
// the Element/Text constructors.
type Elem struct {
	n *xmltree.Node
}

// Element constructs a new element node with the given children, for
// building documents programmatically or for insertion through an
// EditSession.
func Element(label string, children ...Elem) Elem {
	kids := make([]*xmltree.Node, len(children))
	for i, c := range children {
		kids[i] = c.n
	}
	return Elem{n: xmltree.NewElement(label, kids...)}
}

// Text constructs a text (simple value) leaf.
func Text(value string) Elem {
	return Elem{n: xmltree.NewText(value)}
}

// IsValid reports whether the cursor points at a node.
func (e Elem) IsValid() bool { return e.n != nil }

// IsText reports whether the node is a text leaf.
func (e Elem) IsText() bool { return e.n.IsText() }

// Label returns the element tag ("" for text leaves).
func (e Elem) Label() string { return e.n.Label }

// Value returns a text leaf's value, or the concatenated text content of
// an element.
func (e Elem) Value() string {
	if e.n.IsText() {
		return e.n.Text
	}
	return e.n.TextContent()
}

// Attr returns the value of the named attribute.
func (e Elem) Attr(name string) (string, bool) { return e.n.AttrValue(name) }

// NumChildren returns the number of children (including text leaves).
func (e Elem) NumChildren() int { return len(e.n.Children) }

// Child returns the i-th child.
func (e Elem) Child(i int) Elem { return Elem{n: e.n.Children[i]} }

// Children returns cursors on all children.
func (e Elem) Children() []Elem {
	out := make([]Elem, len(e.n.Children))
	for i, c := range e.n.Children {
		out[i] = Elem{n: c}
	}
	return out
}

// Parent returns the parent cursor (invalid for the root).
func (e Elem) Parent() Elem { return Elem{n: e.n.Parent} }

// First returns the first descendant element with the given label, in
// document order (the node itself included).
func (e Elem) First(label string) (Elem, bool) {
	var found *xmltree.Node
	e.n.Walk(func(n *xmltree.Node) bool {
		if found != nil {
			return false
		}
		if !n.IsText() && n.Label == label {
			found = n
			return false
		}
		return true
	})
	if found == nil {
		return Elem{}, false
	}
	return Elem{n: found}, true
}

// All returns all descendant elements with the given label, in document
// order (the node itself included).
func (e Elem) All(label string) []Elem {
	var out []Elem
	e.n.Walk(func(n *xmltree.Node) bool {
		if !n.IsText() && n.Label == label {
			out = append(out, Elem{n: n})
		}
		return true
	})
	return out
}

// Path returns an XPath-like location of the node, for diagnostics.
func (e Elem) Path() string { return schema.NodePath(e.n) }

// String renders the subtree as compact XML.
func (e Elem) String() string { return xmltree.XMLString(e.n) }
