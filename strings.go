package revalidate

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/strcast"
)

// StringCaster is the string-level (§4) machinery exposed directly: given
// two content-model expressions over element labels, it decides membership
// of label sequences known to match the source expression in the target
// expression's language, scanning as few symbols as possible. It is the
// engine a Caster runs per content model, useful standalone for streaming
// or event-based processing.
type StringCaster struct {
	alpha *fa.Alphabet
	c     *strcast.Caster
}

// NewStringCaster compiles a (source, target) pair of content-model
// expressions. The syntax is DTD-flavoured: `a, b` sequence, `a | b`
// choice, `?` `*` `+` `{m,n}` occurrence bounds, `EMPTY` for ε.
func NewStringCaster(source, target string) (*StringCaster, error) {
	srcExpr, err := regexpsym.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("revalidate: source expression: %w", err)
	}
	dstExpr, err := regexpsym.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("revalidate: target expression: %w", err)
	}
	alpha := fa.NewAlphabet()
	a := regexpsym.Compile(srcExpr, alpha)
	b := regexpsym.Compile(dstExpr, alpha)
	return &StringCaster{alpha: alpha, c: strcast.New(a, b)}, nil
}

// StringResult reports a string-cast outcome.
type StringResult struct {
	// Accepted reports membership in the target language (valid under the
	// contract that the input matches the source expression).
	Accepted bool
	// Scanned counts the symbols examined before the verdict; an early
	// verdict (immediate accept/reject) leaves it below the input length.
	Scanned int
	// Early reports that the verdict came before the end of the input.
	Early bool
	// Reversed reports a right-to-left scan (chosen when edits cluster at
	// the end of the string).
	Reversed bool
}

// Validate decides whether labels — a sequence matching the source
// expression — also matches the target expression.
func (sc *StringCaster) Validate(labels []string) (StringResult, error) {
	word, err := sc.word(labels)
	if err != nil {
		return StringResult{}, err
	}
	res := sc.c.Validate(word)
	return StringResult{
		Accepted: res.Accepted,
		Scanned:  res.Scanned,
		Early:    res.Decision != fa.Undecided,
	}, nil
}

// Editor starts an edit session over a label sequence, tracking how much
// of it stays untouched at each end so ValidateEdited can re-synchronize.
type StringEditor struct {
	sc *StringCaster
	ed *strcast.Editor
}

// Edit begins editing a label sequence that matches the source expression.
func (sc *StringCaster) Edit(labels []string) (*StringEditor, error) {
	word, err := sc.word(labels)
	if err != nil {
		return nil, err
	}
	return &StringEditor{sc: sc, ed: strcast.NewEditor(word)}, nil
}

// Replace renames the label at position pos.
func (se *StringEditor) Replace(pos int, label string) {
	se.ed.Replace(pos, se.sc.alpha.Intern(label))
}

// Insert places a label at position pos.
func (se *StringEditor) Insert(pos int, label string) {
	se.ed.Insert(pos, se.sc.alpha.Intern(label))
}

// Append adds a label at the end.
func (se *StringEditor) Append(label string) {
	se.ed.Append(se.sc.alpha.Intern(label))
}

// Delete removes the label at position pos.
func (se *StringEditor) Delete(pos int) { se.ed.Delete(pos) }

// Current returns the edited sequence.
func (se *StringEditor) Current() []string {
	cur := se.ed.Current()
	out := make([]string, len(cur))
	for i, sym := range cur {
		out[i] = se.sc.alpha.Name(sym)
	}
	return out
}

// Validate decides whether the edited sequence matches the target
// expression, scanning only what the tracked unmodified bounds force.
func (se *StringEditor) Validate() StringResult {
	res := se.ed.Validate(se.sc.c)
	return StringResult{
		Accepted: res.Accepted,
		Scanned:  res.Scanned,
		Early:    res.Decision != fa.Undecided,
		Reversed: res.Reversed,
	}
}

func (sc *StringCaster) word(labels []string) ([]fa.Symbol, error) {
	word := make([]fa.Symbol, len(labels))
	for i, l := range labels {
		s := sc.alpha.Lookup(l)
		if s == fa.NoSymbol {
			return nil, fmt.Errorf("revalidate: label %q does not occur in either expression", l)
		}
		word[i] = s
	}
	return word, nil
}
