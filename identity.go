package revalidate

import (
	"fmt"

	"repro/internal/ident"
)

// Identity constraints (xs:unique / xs:key / xs:keyref) are validated
// separately from structure: the paper's formalism — and therefore the
// schema cast machinery — covers structural constraints, with key
// constraints named as the extension under development (§7). This file
// supplies that extension, including incremental re-checking after edits.

// HasIdentityConstraints reports whether the schema declared any
// xs:unique/key/keyref constraints.
func (s *Schema) HasIdentityConstraints() bool { return s.s.Ident != nil }

// IdentityConstraints describes the declared constraints (for diagnostics).
func (s *Schema) IdentityConstraints() []string {
	if s.s.Ident == nil {
		return nil
	}
	cs := s.s.Ident.Constraints()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// ValidateIdentity checks the document against the schema's identity
// constraints. A schema without constraints accepts everything. Structural
// validity is checked separately (Schema.Validate or a Caster).
func (s *Schema) ValidateIdentity(doc *Document) error {
	if s.s.Ident == nil {
		return nil
	}
	return s.s.Ident.Validate(doc.root)
}

// IdentityIndex caches per-scope key/unique tuples so that identity
// constraints can be re-checked incrementally after an edit session: only
// scopes whose subtree was touched are re-evaluated.
type IdentityIndex struct {
	idx *ident.Index
}

// BuildIdentityIndex evaluates the constraints over the document (which
// must currently satisfy them) and returns the incremental index.
func (s *Schema) BuildIdentityIndex(doc *Document) (*IdentityIndex, error) {
	if s.s.Ident == nil {
		return nil, fmt.Errorf("revalidate: schema declares no identity constraints")
	}
	idx, err := s.s.Ident.BuildIndex(doc.root)
	if err != nil {
		return nil, err
	}
	return &IdentityIndex{idx: idx}, nil
}

// ValidateModified re-checks identity constraints after an edit session,
// re-evaluating only scopes the change set touched. On success the index
// absorbs the new state, so subsequent edit sessions can keep using it.
func (ii *IdentityIndex) ValidateModified(doc *Document, changes *ChangeSet) error {
	return ii.idx.ValidateModified(doc.root, changes.trie)
}
