package revalidate

import (
	"context"

	"repro/internal/baseline"
	"repro/internal/cast"
	"repro/internal/telemetry"
	"repro/internal/update"
	"repro/internal/xmltree"
)

// Caster revalidates documents known to conform to a source schema against
// a target schema, using the precomputed subsumption/disjointness
// relations and content-model immediate decision automata of the paper.
// A Caster is immutable after construction and safe for concurrent use.
type Caster struct {
	src, dst *Schema
	engine   *cast.Engine
}

// CasterOption tunes caster construction.
type CasterOption func(*cast.Options)

// WithoutContentIDA disables the §4 immediate decision automata for
// content models (children label strings are then scanned fully with the
// target automaton, as the paper's modified-Xerces prototype did). An
// ablation switch; the default is on.
func WithoutContentIDA() CasterOption {
	return func(o *cast.Options) { o.DisableContentIDA = true }
}

// WithoutRelations disables the subsumed/disjoint subtree skipping,
// reducing the caster to a full top-down revalidation. An ablation switch.
func WithoutRelations() CasterOption {
	return func(o *cast.Options) { o.DisableRelations = true }
}

// NewCaster preprocesses a (source, target) schema pair. Both schemas must
// come from the same Universe. Preprocessing cost depends only on schema
// sizes, never on the documents to be validated.
func NewCaster(src, dst *Schema, opts ...CasterOption) (*Caster, error) {
	if err := sameUniverse(src, dst); err != nil {
		return nil, err
	}
	var o cast.Options
	for _, opt := range opts {
		opt(&o)
	}
	engine, err := cast.New(src.s, dst.s, o)
	if err != nil {
		return nil, err
	}
	return &Caster{src: src, dst: dst, engine: engine}, nil
}

// Source returns the caster's source schema.
func (c *Caster) Source() *Schema { return c.src }

// Target returns the caster's target schema.
func (c *Caster) Target() *Schema { return c.dst }

// Stats reports the work performed by one validation. The node counters
// are a machine-independent cost measure (the paper's Table 3 metric).
// Field names are shared with StreamStats and the internal engines so a
// counter means the same thing wherever it appears.
type Stats struct {
	// ElementsVisited counts element nodes examined.
	ElementsVisited int64
	// TextNodesVisited counts text leaves whose value was read.
	TextNodesVisited int64
	// AutomatonSteps counts automaton transitions taken in content-model
	// checks — the number of child-label symbols scanned.
	AutomatonSteps int64
	// SymbolsSkipped counts child labels seen after an immediate decision
	// automaton had already settled a content-model verdict.
	SymbolsSkipped int64
	// SubsumedSkips counts subtrees skipped outright because the source
	// type is subsumed by the target type.
	SubsumedSkips int64
	// DisjointRejects counts rejections caused by disjoint type pairs.
	DisjointRejects int64
	// FullValidations counts subtrees that had to be validated from
	// scratch (inserted content).
	FullValidations int64
	// ReverseScans counts with-modifications content checks that chose the
	// reverse-automaton scan direction (edits clustered at the end).
	ReverseScans int64
	// MaxDepth is the deepest element depth reached (root = 0). Batch
	// totals merge it with max, not sum.
	MaxDepth int64
}

// NodesVisited is the total of element and text nodes examined.
func (s Stats) NodesVisited() int64 { return s.ElementsVisited + s.TextNodesVisited }

// WorkSavedRatio is the fraction of a document's nodes this validation
// never touched: 1 − visited/total, clamped to [0, 1]. Pass the document's
// Document.NodeCount (the tree engine cannot know the size of subtrees it
// skipped).
func (s Stats) WorkSavedRatio(totalNodes int64) float64 {
	if totalNodes <= 0 {
		return 0
	}
	r := 1 - float64(s.NodesVisited())/float64(totalNodes)
	if r < 0 {
		return 0
	}
	return r
}

// SymbolsScannedRatio is the fraction of content-model symbols actually
// scanned out of all symbols seen: steps/(steps+skipped). 1 when no
// immediate decision fired.
func (s Stats) SymbolsScannedRatio() float64 {
	total := s.AutomatonSteps + s.SymbolsSkipped
	if total == 0 {
		return 1
	}
	return float64(s.AutomatonSteps) / float64(total)
}

func fromCastStats(cs cast.Stats) Stats {
	return Stats{
		ElementsVisited:  cs.ElementsVisited,
		TextNodesVisited: cs.TextNodesVisited,
		AutomatonSteps:   cs.AutomatonSteps,
		SymbolsSkipped:   cs.SymbolsSkipped,
		SubsumedSkips:    cs.SubsumedSkips,
		DisjointRejects:  cs.DisjointRejects,
		FullValidations:  cs.FullValidations,
		ReverseScans:     cs.ReverseScans,
		MaxDepth:         cs.MaxDepth,
	}
}

// TraceEvent is one recorded decision of a traced validation: which action
// the engine took where, and for which (source, target) type pair. Action
// is one of "descend", "skip", "reject", "content", "simple", "full".
type TraceEvent struct {
	Action string `json:"action"`
	// Path is the XPath-like location of the element the decision concerns.
	Path string `json:"path"`
	// Dewey is the element's Dewey decimal number ("0.2.1"; "ε" for the
	// root).
	Dewey string `json:"dewey"`
	// Depth is the element depth (root = 0).
	Depth int `json:"depth"`
	// SrcType and DstType name the (τ, τ') pair the decision was made for.
	SrcType string `json:"srcType,omitempty"`
	DstType string `json:"dstType,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

func fromTraceEvents(tr *telemetry.Trace) []TraceEvent {
	events := tr.Events()
	out := make([]TraceEvent, len(events))
	for i, e := range events {
		out[i] = TraceEvent{
			Action: string(e.Action), Path: e.Path, Dewey: e.Dewey, Depth: e.Depth,
			SrcType: e.SrcType, DstType: e.DstType, Detail: e.Detail,
		}
	}
	return out
}

// Validate decides whether doc — assumed valid under the source schema —
// is valid under the target schema. It returns nil when valid.
func (c *Caster) Validate(doc *Document) error {
	_, err := c.engine.Validate(doc.root)
	return err
}

// ValidateContext is ValidateStats with cooperative cancellation: the walk
// polls ctx.Done() with amortized checks (every few hundred elements), so
// a canceled or deadline-expired validation returns promptly with an error
// wrapping the context's cause while the hot path stays lock-free. Use it
// wherever a validation serves a request with a deadline.
func (c *Caster) ValidateContext(ctx context.Context, doc *Document) (Stats, error) {
	cs, err := c.engine.ValidateContext(ctx, doc.root)
	return fromCastStats(cs), err
}

// ValidateStats is Validate with work statistics.
func (c *Caster) ValidateStats(doc *Document) (Stats, error) {
	cs, err := c.engine.Validate(doc.root)
	return fromCastStats(cs), err
}

// ValidateTraced is ValidateStats in trace mode: alongside the verdict and
// statistics it returns the decision trace — one event per skip, reject,
// descend and check, in traversal order. The trace's skip and reject counts
// always equal the returned Stats' SubsumedSkips and DisjointRejects.
// Trace mode allocates per decision; use Validate/ValidateStats on hot
// paths.
func (c *Caster) ValidateTraced(doc *Document) (Stats, []TraceEvent, error) {
	tr := &telemetry.Trace{}
	cs, err := c.engine.ValidateTrace(doc.root, tr)
	return fromCastStats(cs), fromTraceEvents(tr), err
}

// ValidateAll validates a batch of documents concurrently on a pool of
// workers sharing this caster (its preprocessed relations and content-model
// automata are immutable, so the hot path runs lock-free). workers <= 0
// uses one worker per logical CPU. The returned slice holds one verdict per
// document (nil when valid), and the Stats are the batch totals, merged
// from per-worker counters with atomic adds.
func (c *Caster) ValidateAll(docs []*Document, workers int) ([]error, Stats) {
	return c.ValidateAllContext(context.Background(), docs, workers)
}

// ValidateAllContext is ValidateAll with fault containment and cooperative
// cancellation: each document's validation runs under a per-slot panic
// guard (a panicking validation yields a *PanicError verdict for its own
// slot, never crashes the pool), workers poll ctx between documents, and a
// canceled batch marks every unclaimed slot with the context's cause.
func (c *Caster) ValidateAllContext(ctx context.Context, docs []*Document, workers int) ([]error, Stats) {
	if len(docs) == 0 {
		return nil, Stats{}
	}
	errs := make([]error, len(docs))
	done := ctx.Done()
	var total Stats
	runWorkers(len(docs), workers, func(claim func() (int, bool)) {
		var local Stats
		for {
			i, ok := claim()
			if !ok {
				break
			}
			if done != nil && ctx.Err() != nil {
				errs[i] = context.Cause(ctx)
				continue
			}
			cs, err := guardValidate(func() (cast.Stats, error) {
				return c.engine.ValidateContext(ctx, docs[i].root)
			})
			errs[i] = err
			local.Add(fromCastStats(cs))
		}
		total.atomicAdd(local)
	})
	return errs, total
}

// ValidateModified decides whether an edited document is valid under the
// target schema, given that its pre-edit form was valid under the source
// schema. changes must come from an EditSession over this document.
func (c *Caster) ValidateModified(doc *Document, changes *ChangeSet) error {
	_, err := c.engine.ValidateModified(doc.root, changes.trie)
	return err
}

// ValidateModifiedStats is ValidateModified with work statistics.
func (c *Caster) ValidateModifiedStats(doc *Document, changes *ChangeSet) (Stats, error) {
	cs, err := c.engine.ValidateModified(doc.root, changes.trie)
	return fromCastStats(cs), err
}

// Index gives direct access to all instances of each element label in a
// document, enabling the DTD optimization of §3.4.
type Index struct {
	idx cast.LabelIndex
}

// BuildIndex indexes a document by element label (one linear pass,
// amortized over repeated revalidations).
func BuildIndex(doc *Document) *Index {
	return &Index{idx: cast.BuildLabelIndex(doc.root)}
}

// ValidateIndexed revalidates using the DTD label-index optimization: only
// instances of labels whose (source, target) type pair is neither subsumed
// nor disjoint are visited, and only their immediate content is checked.
// Both schemas must be DTD-shaped (Schema.IsDTD).
func (c *Caster) ValidateIndexed(doc *Document, index *Index) error {
	_, err := c.engine.ValidateDTD(doc.root, index.idx)
	return err
}

// ValidateIndexedStats is ValidateIndexed with work statistics.
func (c *Caster) ValidateIndexedStats(doc *Document, index *Index) (Stats, error) {
	cs, err := c.engine.ValidateDTD(doc.root, index.idx)
	return fromCastStats(cs), err
}

// ValidateFull runs a complete target-schema validation of the document
// (the Xerces-style baseline) with the same instrumentation, for
// comparison against the cast paths.
func (s *Schema) ValidateFull(doc *Document) (Stats, error) {
	bs, err := baseline.New(s.s).Validate(doc.root)
	return Stats{
		ElementsVisited:  bs.ElementsVisited,
		TextNodesVisited: bs.TextNodesVisited,
		AutomatonSteps:   bs.AutomatonSteps,
	}, err
}

// EditSession applies tracked edits to a document, Δ-encoding them so that
// schema cast validation with modifications can localize its work. Create
// one with Document.Edit; after the last edit call Done and pass the
// resulting ChangeSet to Caster.ValidateModified.
type EditSession struct {
	doc *Document
	tk  *update.Tracker
}

// Edit starts an edit session. The document is modified in place (deleted
// subtrees become invisible tombstones until serialization).
func (d *Document) Edit() *EditSession {
	return &EditSession{doc: d, tk: update.NewTracker(d.root)}
}

// Relabel changes an element's tag.
func (es *EditSession) Relabel(e Elem, newLabel string) error {
	return es.tk.Relabel(e.n, newLabel)
}

// SetText changes a text leaf's value.
func (es *EditSession) SetText(e Elem, value string) error {
	return es.tk.SetText(e.n, value)
}

// SetValue changes the simple value of an element with text content
// (convenience over SetText on the single text child; an element without a
// live text child gets one inserted). Tombstoned (deleted) text children
// are skipped, so delete-then-SetValue inserts a fresh text child instead
// of touching the deleted node.
func (es *EditSession) SetValue(e Elem, value string) error {
	for _, c := range e.n.Children {
		if c.IsText() && c.Delta != xmltree.DeltaDelete {
			return es.tk.SetText(c, value)
		}
	}
	return es.tk.AppendChild(e.n, Text(value).n)
}

// InsertBefore inserts a new subtree as the sibling before ref.
func (es *EditSession) InsertBefore(ref, subtree Elem) error {
	return es.tk.InsertBefore(ref.n, subtree.n)
}

// InsertAfter inserts a new subtree as the sibling after ref.
func (es *EditSession) InsertAfter(ref, subtree Elem) error {
	return es.tk.InsertAfter(ref.n, subtree.n)
}

// InsertFirstChild inserts a new subtree as parent's first child.
func (es *EditSession) InsertFirstChild(parent, subtree Elem) error {
	return es.tk.InsertFirstChild(parent.n, subtree.n)
}

// AppendChild inserts a new subtree as parent's last child.
func (es *EditSession) AppendChild(parent, subtree Elem) error {
	return es.tk.AppendChild(parent.n, subtree.n)
}

// Delete removes the subtree at e (tombstoned until serialization).
func (es *EditSession) Delete(e Elem) error {
	return es.tk.Delete(e.n)
}

// Edits returns the number of edits applied so far.
func (es *EditSession) Edits() int { return es.tk.Edits() }

// Done finalizes the session and returns the change set. The document must
// not be edited further through this session.
func (es *EditSession) Done() *ChangeSet {
	return &ChangeSet{trie: es.tk.Finalize()}
}

// ChangeSet localizes the regions a document edit session touched: a trie
// over Dewey numbers whose memory is proportional to the number of edits,
// independent of document size.
type ChangeSet struct {
	trie *update.Trie
}

// Empty reports whether no modifications were recorded.
func (cs *ChangeSet) Empty() bool { return !cs.trie.Modified() }

// Size returns the number of recorded modification sites.
func (cs *ChangeSet) Size() int { return cs.trie.Size() }
