package revalidate

import (
	"context"
	"io"

	"repro/internal/stream"
	"repro/internal/telemetry"
)

// StreamStats counts the work of a streaming validation. Field names are
// shared with Stats and the internal engines so a counter means the same
// thing wherever it appears.
type StreamStats struct {
	// ElementsVisited counts elements that received validation work.
	ElementsVisited int64
	// ElementsSkimmed counts elements consumed inside subsumed subtrees
	// with no validation work at all (streaming cast only).
	ElementsSkimmed int64
	// AutomatonSteps counts content-model transitions taken — the number of
	// child-label symbols scanned.
	AutomatonSteps int64
	// SymbolsSkipped counts child labels that arrived after an immediate
	// decision automaton had already settled the content-model verdict.
	SymbolsSkipped int64
	// SubsumedSkips counts subtrees skimmed because the source type is
	// subsumed by the target type.
	SubsumedSkips int64
	// DisjointRejects counts rejections caused by disjoint type pairs.
	DisjointRejects int64
	// ValuesChecked counts simple values tested against facets.
	ValuesChecked int64
	// MaxDepth is the deepest element depth reached (root = 0). Batch
	// totals merge it with max, not sum.
	MaxDepth int64
}

// WorkSavedRatio is the fraction of elements the caster skimmed instead of
// validating: skimmed/(visited+skimmed). 0 when nothing flowed.
func (s StreamStats) WorkSavedRatio() float64 {
	total := s.ElementsVisited + s.ElementsSkimmed
	if total == 0 {
		return 0
	}
	return float64(s.ElementsSkimmed) / float64(total)
}

// SymbolsScannedRatio is the fraction of content-model symbols actually
// scanned out of all symbols seen: steps/(steps+skipped). 1 when no
// immediate decision fired.
func (s StreamStats) SymbolsScannedRatio() float64 {
	total := s.AutomatonSteps + s.SymbolsSkipped
	if total == 0 {
		return 1
	}
	return float64(s.AutomatonSteps) / float64(total)
}

func fromStreamStats(s stream.Stats) StreamStats {
	return StreamStats{
		ElementsVisited: s.ElementsVisited,
		ElementsSkimmed: s.ElementsSkimmed,
		AutomatonSteps:  s.AutomatonSteps,
		SymbolsSkipped:  s.SymbolsSkipped,
		SubsumedSkips:   s.SubsumedSkips,
		DisjointRejects: s.DisjointRejects,
		ValuesChecked:   s.ValuesChecked,
		MaxDepth:        s.MaxDepth,
	}
}

// ValidateStream fully validates one XML document read from r, without
// building a document tree: memory is proportional to element depth. For
// revalidation with source-schema knowledge use a StreamCaster.
func (s *Schema) ValidateStream(r io.Reader) (StreamStats, error) {
	return s.ValidateStreamContext(context.Background(), r, Limits{})
}

// ValidateStreamContext is ValidateStream with cooperative cancellation
// and resource limits, mirroring StreamCaster.ValidateContext: the walker
// polls ctx.Done() with amortized checks, and a document exceeding lim's
// depth or element bounds is rejected with a *LimitError. The zero Limits
// is unlimited. Full validation serves untrusted input more often than
// the cast path does, so governed entry points matter at least as much
// here.
func (s *Schema) ValidateStreamContext(ctx context.Context, r io.Reader, lim Limits) (StreamStats, error) {
	st, err := stream.NewValidator(s.s).ValidateContext(ctx, r, lim)
	return fromStreamStats(st), err
}

// StreamCaster performs schema cast validation over a token stream: the
// incoming document is known to satisfy the source schema, and validity
// under the target schema is decided as tokens arrive. Subtrees whose type
// pair is subsumed are skimmed (consumed with no validation work); a
// disjoint pair rejects immediately; content models conclude early through
// the immediate decision automata. Memory is proportional to document
// depth — the natural fit for the message-broker setting the paper
// motivates.
type StreamCaster struct {
	src, dst *Schema
	c        *stream.Caster
}

// NewStreamCaster preprocesses a (source, target) schema pair for
// streaming casts. Both schemas must come from the same Universe.
func NewStreamCaster(src, dst *Schema) (*StreamCaster, error) {
	if err := sameUniverse(src, dst); err != nil {
		return nil, err
	}
	c, err := stream.NewCaster(src.s, dst.s)
	if err != nil {
		return nil, err
	}
	return &StreamCaster{src: src, dst: dst, c: c}, nil
}

// Validate reads one XML document from r — assumed valid under the source
// schema — and decides validity under the target schema.
func (c *StreamCaster) Validate(r io.Reader) (StreamStats, error) {
	st, err := c.c.Validate(r)
	return fromStreamStats(st), err
}

// ValidateContext is Validate with cooperative cancellation and resource
// limits: the stream walker polls ctx.Done() with amortized checks (every
// few hundred tokens), so a canceled or deadline-expired cast stops within
// one check interval, and a document exceeding lim's depth or element
// bounds is rejected with a *LimitError. The zero Limits is unlimited.
// This is the entry point a daemon should use: it bounds what one hostile
// document or one slow client can cost.
func (c *StreamCaster) ValidateContext(ctx context.Context, r io.Reader, lim Limits) (StreamStats, error) {
	st, err := c.c.ValidateContext(ctx, r, lim)
	return fromStreamStats(st), err
}

// ValidateTraced is Validate in trace mode: alongside the verdict and
// statistics it returns the decision trace — one event per skim, reject and
// descend, in document order. Trace mode allocates; use Validate on hot
// paths.
func (c *StreamCaster) ValidateTraced(r io.Reader) (StreamStats, []TraceEvent, error) {
	tr := &telemetry.Trace{}
	st, err := c.c.ValidateTrace(r, tr)
	return fromStreamStats(st), fromTraceEvents(tr), err
}

// ValidateTracedContext is ValidateTraced with the cancellation and limit
// behavior of ValidateContext.
func (c *StreamCaster) ValidateTracedContext(ctx context.Context, r io.Reader, lim Limits) (StreamStats, []TraceEvent, error) {
	tr := &telemetry.Trace{}
	st, err := c.c.ValidateTraceContext(ctx, r, tr, lim)
	return fromStreamStats(st), fromTraceEvents(tr), err
}

// ValidateAll validates one document per reader concurrently on a pool of
// workers sharing this caster — the broker shape: many connections, one
// preprocessed schema pair. workers <= 0 uses one worker per logical CPU.
// The returned slice holds one verdict per reader (nil when valid), and
// the StreamStats are the batch totals, merged from per-worker counters
// with atomic adds. Each reader is consumed by exactly one worker, and a
// reader that fails mid-stream fails only its own slot (with the reader's
// error wrapped), never its siblings.
func (c *StreamCaster) ValidateAll(rs []io.Reader, workers int) ([]error, StreamStats) {
	return c.ValidateAllContext(context.Background(), rs, workers, Limits{})
}

// ValidateAllContext is ValidateAll with fault containment and resource
// governance: every document runs under the cancellation and limit
// behavior of ValidateContext, each slot's validation is panic-guarded (a
// panicking worker yields a *PanicError verdict for its own slot, never
// crashes the pool), and a canceled batch marks every unclaimed slot with
// the context's cause instead of consuming its reader.
func (c *StreamCaster) ValidateAllContext(ctx context.Context, rs []io.Reader, workers int, lim Limits) ([]error, StreamStats) {
	if len(rs) == 0 {
		return nil, StreamStats{}
	}
	errs := make([]error, len(rs))
	done := ctx.Done()
	var total StreamStats
	runWorkers(len(rs), workers, func(claim func() (int, bool)) {
		var local StreamStats
		for {
			i, ok := claim()
			if !ok {
				break
			}
			if done != nil && ctx.Err() != nil {
				errs[i] = context.Cause(ctx)
				continue
			}
			st, err := guardValidate(func() (stream.Stats, error) {
				return c.c.ValidateContext(ctx, rs[i], lim)
			})
			errs[i] = err
			local.Add(fromStreamStats(st))
		}
		total.atomicAdd(local)
	})
	return errs, total
}
