package revalidate

import (
	"io"

	"repro/internal/stream"
)

// StreamStats counts the work of a streaming validation.
type StreamStats struct {
	// ElementsProcessed counts elements that received validation work.
	ElementsProcessed int64
	// ElementsSkimmed counts elements consumed inside subsumed subtrees
	// with no validation work at all (streaming cast only).
	ElementsSkimmed int64
	// AutomatonSteps counts content-model transitions taken.
	AutomatonSteps int64
	// ValuesChecked counts simple values tested against facets.
	ValuesChecked int64
}

func fromStreamStats(s stream.Stats) StreamStats {
	return StreamStats{
		ElementsProcessed: s.ElementsProcessed,
		ElementsSkimmed:   s.ElementsSkimmed,
		AutomatonSteps:    s.AutomatonSteps,
		ValuesChecked:     s.ValuesChecked,
	}
}

// ValidateStream fully validates one XML document read from r, without
// building a document tree: memory is proportional to element depth. For
// revalidation with source-schema knowledge use a StreamCaster.
func (s *Schema) ValidateStream(r io.Reader) (StreamStats, error) {
	st, err := stream.NewValidator(s.s).Validate(r)
	return fromStreamStats(st), err
}

// StreamCaster performs schema cast validation over a token stream: the
// incoming document is known to satisfy the source schema, and validity
// under the target schema is decided as tokens arrive. Subtrees whose type
// pair is subsumed are skimmed (consumed with no validation work); a
// disjoint pair rejects immediately; content models conclude early through
// the immediate decision automata. Memory is proportional to document
// depth — the natural fit for the message-broker setting the paper
// motivates.
type StreamCaster struct {
	src, dst *Schema
	c        *stream.Caster
}

// NewStreamCaster preprocesses a (source, target) schema pair for
// streaming casts. Both schemas must come from the same Universe.
func NewStreamCaster(src, dst *Schema) (*StreamCaster, error) {
	if err := sameUniverse(src, dst); err != nil {
		return nil, err
	}
	c, err := stream.NewCaster(src.s, dst.s)
	if err != nil {
		return nil, err
	}
	return &StreamCaster{src: src, dst: dst, c: c}, nil
}

// Validate reads one XML document from r — assumed valid under the source
// schema — and decides validity under the target schema.
func (c *StreamCaster) Validate(r io.Reader) (StreamStats, error) {
	st, err := c.c.Validate(r)
	return fromStreamStats(st), err
}

// ValidateAll validates one document per reader concurrently on a pool of
// workers sharing this caster — the broker shape: many connections, one
// preprocessed schema pair. workers <= 0 uses one worker per logical CPU.
// The returned slice holds one verdict per reader (nil when valid), and
// the StreamStats are the batch totals, merged from per-worker counters
// with atomic adds. Each reader is consumed by exactly one worker, and a
// reader that fails mid-stream fails only its own slot (with the reader's
// error wrapped), never its siblings.
func (c *StreamCaster) ValidateAll(rs []io.Reader, workers int) ([]error, StreamStats) {
	if len(rs) == 0 {
		return nil, StreamStats{}
	}
	errs := make([]error, len(rs))
	var total StreamStats
	runWorkers(len(rs), workers, func(claim func() (int, bool)) {
		var local StreamStats
		for {
			i, ok := claim()
			if !ok {
				break
			}
			st, err := c.c.Validate(rs[i])
			errs[i] = err
			local.Add(fromStreamStats(st))
		}
		total.atomicAdd(local)
	})
	return errs, total
}
