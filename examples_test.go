package revalidate_test

// Integration smoke tests for the runnable examples: each must build, run
// to completion, and print its expected landmark lines.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example builds are slow in -short mode")
	}
	cases := []struct {
		name  string
		wants []string
	}{
		{"quickstart", []string{"✓ valid under v2", "✗ not valid under v2", "subtrees skipped as subsumed"}},
		{"schemaevolution", []string{"triaging the archive", "repaired", "0 need manual attention"}},
		{"messagebroker", []string{"routed 200 messages", "schema cast (streaming)", "% of the nodes"}},
		{"editor", []string{"editing a purchase order", "examined", "follows the edit"}},
		{"catalog", []string{"skuKey", "✓ committed", "duplicate tuple", "rolled back"}},
	}
	dir := t.TempDir()
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(dir, c.name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+c.name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			for _, want := range c.wants {
				if !strings.Contains(string(out), want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
