package revalidate_test

// Integration tests for the command-line tools: each binary is compiled
// once into a temp dir and driven through its main paths.

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/wgen"
)

var (
	toolsOnce sync.Once
	toolsDir  string
	toolsErr  error
)

// buildTools compiles the three binaries once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	toolsOnce.Do(func() {
		dir, err := os.MkdirTemp("", "revalidate-tools-")
		if err != nil {
			toolsErr = err
			return
		}
		toolsDir = dir
		for _, tool := range []string{"xmlcast", "schemadump", "castbench", "castd"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			cmd.Dir = "."
			if out, err := cmd.CombinedOutput(); err != nil {
				toolsErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if toolsErr != nil {
		t.Fatalf("building tools: %v", toolsErr)
	}
	return toolsDir
}

// fixtures writes the paper schema pair and two documents into a temp dir.
func fixtures(t *testing.T) (dir, srcXSD, dstXSD, validDoc, invalidDoc string) {
	t.Helper()
	dir = t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	srcXSD = write("v1.xsd", wgen.Figure2XSD(true, 100))
	dstXSD = write("v2.xsd", wgen.Figure2XSD(false, 100))
	withBill := wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: true, Seed: 1})
	without := wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: false, Seed: 1})
	validDoc = write("with.xml", string(wgen.POXMLBytes(withBill)))
	invalidDoc = write("without.xml", string(wgen.POXMLBytes(without)))
	return
}

func run(t *testing.T, bin string, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v", bin, err)
	}
	return out.String(), errb.String(), code
}

func TestXmlcastCLI(t *testing.T) {
	bin := filepath.Join(buildTools(t), "xmlcast")
	_, src, dst, valid, invalid := fixtures(t)

	// Full validation (no source).
	out, _, code := run(t, bin, "-target", dst, valid)
	if code != 0 || !strings.Contains(out, "valid") {
		t.Fatalf("full validation: code=%d out=%q", code, out)
	}
	// Schema cast with stats.
	out, errOut, code := run(t, bin, "-source", src, "-target", dst, "-stats", valid)
	if code != 0 || !strings.Contains(out, "valid") {
		t.Fatalf("cast: code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(errOut, "skips=") {
		t.Fatalf("expected stats on stderr: %q", errOut)
	}
	// Invalid document: exit 1 with a reason.
	_, errOut, code = run(t, bin, "-source", src, "-target", dst, invalid)
	if code != 1 || !strings.Contains(errOut, "INVALID") {
		t.Fatalf("invalid doc: code=%d err=%q", code, errOut)
	}
	// Indexed mode.
	out, _, code = run(t, bin, "-source", src, "-target", dst, "-indexed", valid)
	if code != 0 || !strings.Contains(out, "valid") {
		t.Fatalf("indexed: code=%d out=%q", code, out)
	}
	// Repair mode emits corrected XML on stdout.
	out, errOut, code = run(t, bin, "-source", src, "-target", dst, "-repair", invalid)
	if code != 0 {
		t.Fatalf("repair: code=%d err=%q", code, errOut)
	}
	if !strings.Contains(out, "<billTo>") || !strings.Contains(errOut, "1 inserts") {
		t.Fatalf("repair output wrong:\nstdout=%q\nstderr=%q", out, errOut)
	}
	// Usage error.
	_, _, code = run(t, bin)
	if code != 2 {
		t.Fatalf("missing args should exit 2, got %d", code)
	}
	// Unreadable schema.
	_, _, code = run(t, bin, "-target", "/nonexistent.xsd", valid)
	if code != 2 {
		t.Fatalf("missing schema file should exit 2, got %d", code)
	}
}

// TestXmlcastExitCodeContract pins the scripting contract the daemon smoke
// tests rely on: 0 valid / 1 invalid / 2 usage-or-IO, verdicts on stdout,
// diagnostics on stderr.
func TestXmlcastExitCodeContract(t *testing.T) {
	bin := filepath.Join(buildTools(t), "xmlcast")
	dir, src, dst, valid, invalid := fixtures(t)

	// Valid: exit 0, verdict on stdout, silent stderr.
	out, errOut, code := run(t, bin, "-source", src, "-target", dst, valid)
	if code != 0 || strings.TrimSpace(out) != "valid" || errOut != "" {
		t.Fatalf("valid: code=%d stdout=%q stderr=%q", code, out, errOut)
	}
	// Invalid: exit 1, reason on stderr only.
	out, errOut, code = run(t, bin, "-source", src, "-target", dst, invalid)
	if code != 1 || out != "" || !strings.Contains(errOut, "INVALID") {
		t.Fatalf("invalid: code=%d stdout=%q stderr=%q", code, out, errOut)
	}
	// Unparseable document: exit 2 with a diagnostic on stderr.
	garbled := filepath.Join(dir, "garbled.xml")
	if err := os.WriteFile(garbled, []byte("<po><unclosed>"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut, code = run(t, bin, "-source", src, "-target", dst, garbled)
	if code != 2 || out != "" || !strings.Contains(errOut, "xmlcast:") {
		t.Fatalf("garbled: code=%d stdout=%q stderr=%q", code, out, errOut)
	}
	// Streaming invalid keeps the same contract.
	out, errOut, code = run(t, bin, "-source", src, "-target", dst, "-stream", invalid)
	if code != 1 || out != "" || !strings.Contains(errOut, "INVALID") {
		t.Fatalf("stream invalid: code=%d stdout=%q stderr=%q", code, out, errOut)
	}
}

// TestCastdSmoke drives the real castd binary end to end: start it on an
// ephemeral port, register the paper's schema pair over HTTP, cast a
// valid and an invalid purchase order, then SIGTERM for a graceful exit.
func TestCastdSmoke(t *testing.T) {
	bin := filepath.Join(buildTools(t), "castd")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "5s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its resolved address (a structured slog record with
	// an addr attribute) once the listener is up.
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "castd: listening") {
			continue
		}
		for _, field := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(field, "addr="); ok {
				base = "http://" + v
				break
			}
		}
		if base != "" {
			break
		}
	}
	if base == "" {
		t.Fatalf("castd never reported its address: %v", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	httpDo := func(method, url, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := httpDo("GET", base+"/healthz", ""); code != 200 {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := httpDo("PUT", base+"/schemas/v1", wgen.Figure2XSD(true, 100)); code != 200 {
		t.Fatalf("register v1: %d %s", code, body)
	}
	if code, body := httpDo("PUT", base+"/schemas/v2", wgen.Figure2XSD(false, 100)); code != 200 {
		t.Fatalf("register v2: %d %s", code, body)
	}
	withBill := string(wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: true, Seed: 1})))
	without := string(wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: false, Seed: 1})))
	if code, body := httpDo("POST", base+"/cast/v1/v2", withBill); code != 200 || !strings.Contains(body, `"valid":true`) {
		t.Fatalf("cast valid doc: %d %s", code, body)
	}
	if code, body := httpDo("POST", base+"/cast/v1/v2", without); code != 200 || !strings.Contains(body, `"valid":false`) {
		t.Fatalf("cast invalid doc: %d %s", code, body)
	}
	if code, body := httpDo("GET", base+"/pairs/v1/v2", ""); code != 200 || !strings.Contains(body, `"alwaysValid":false`) {
		t.Fatalf("pairs: %d %s", code, body)
	}
	if code, body := httpDo("GET", base+"/metrics", ""); code != 200 ||
		!strings.Contains(body, "registry_compiles_total 1") ||
		!strings.Contains(body, "cast_subtrees_skipped_total") {
		t.Fatalf("metrics: %d %s", code, body)
	}
	if code, body := httpDo("GET", base+"/metrics.json", ""); code != 200 || !strings.Contains(body, `"compiles":1`) {
		t.Fatalf("metrics.json: %d %s", code, body)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("castd exit after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("castd did not exit after SIGTERM")
	}
}

func TestSchemadumpCLI(t *testing.T) {
	bin := filepath.Join(buildTools(t), "schemadump")
	_, src, dst, _, _ := fixtures(t)

	out, _, code := run(t, bin, src)
	if code != 0 {
		t.Fatalf("schemadump failed: %d", code)
	}
	for _, want := range []string{"POType1", "shipTo, billTo?, items", "DTD-shaped: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("schemadump output missing %q:\n%s", want, out)
		}
	}
	// DFA dump.
	out, _, code = run(t, bin, "-dfa", "POType1", src)
	if code != 0 || !strings.Contains(out, "content-model DFA of POType1") {
		t.Fatalf("dfa dump: code=%d out=%q", code, out)
	}
	// Relations.
	out, _, code = run(t, bin, "-relations", dst, src)
	if code != 0 || !strings.Contains(out, "subsumed pairs") {
		t.Fatalf("relations: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "USAddress") {
		t.Fatalf("relations output missing types:\n%s", out)
	}
	// Unknown type errors out.
	_, _, code = run(t, bin, "-dfa", "Nope", src)
	if code != 2 {
		t.Fatalf("unknown -dfa type should exit 2, got %d", code)
	}
}

func TestSchemadumpDTD(t *testing.T) {
	bin := filepath.Join(buildTools(t), "schemadump")
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "po.dtd")
	if err := os.WriteFile(dtdPath, []byte(`
		<!ELEMENT po (item*)>
		<!ELEMENT item (#PCDATA)>
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code := run(t, bin, "-dtd-root", "po", dtdPath)
	if code != 0 || !strings.Contains(out, "item*") {
		t.Fatalf("DTD dump: code=%d out=%q", code, out)
	}
}

func TestCastbenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("castbench timings are slow in -short mode")
	}
	bin := filepath.Join(buildTools(t), "castbench")
	out, _, code := run(t, bin, "-table1", "-table2", "-table3")
	if code != 0 {
		t.Fatalf("castbench failed: %d", code)
	}
	for _, want := range []string{
		"Table 1", "POType1",
		"Table 2", "1000",
		"Table 3", "Schema Cast",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("castbench output missing %q:\n%s", want, out)
		}
	}
	// Table 3's 1000-item row must show the cast visiting fewer nodes.
	if !strings.Contains(out, "5004") || !strings.Contains(out, "7028") {
		t.Fatalf("Table 3 node counts changed unexpectedly:\n%s", out)
	}
}

func TestCastbenchParallelCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("castbench timings are slow in -short mode")
	}
	bin := filepath.Join(buildTools(t), "castbench")
	out, _, code := run(t, bin, "-parallel")
	if code != 0 {
		t.Fatalf("castbench -parallel failed: %d", code)
	}
	for _, want := range []string{"parallel batch validation", "workers", "tree-cast", "stream-cast", "1.00x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("castbench -parallel output missing %q:\n%s", want, out)
		}
	}
}

func TestXmlcastStreamingCLI(t *testing.T) {
	bin := filepath.Join(buildTools(t), "xmlcast")
	_, src, dst, valid, invalid := fixtures(t)
	out, errOut, code := run(t, bin, "-source", src, "-target", dst, "-stream", "-stats", valid)
	if code != 0 || !strings.Contains(out, "valid") {
		t.Fatalf("streaming cast: code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(errOut, "skimmed=") {
		t.Fatalf("expected streaming stats: %q", errOut)
	}
	_, errOut, code = run(t, bin, "-source", src, "-target", dst, "-stream", invalid)
	if code != 1 || !strings.Contains(errOut, "INVALID") {
		t.Fatalf("streaming cast of invalid doc: code=%d err=%q", code, errOut)
	}
	// Streaming full validation (no source).
	out, _, code = run(t, bin, "-target", dst, "-stream", valid)
	if code != 0 || !strings.Contains(out, "valid") {
		t.Fatalf("streaming full: code=%d out=%q", code, out)
	}
}
